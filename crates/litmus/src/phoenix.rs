//! Phoenix-2.0 data-parallel kernels (Kozyrakis [29]), reduced to their
//! shared-memory synchronization skeletons.
//!
//! All eight benchmarks follow the map-reduce shape the paper classifies
//! as `env(nocas, acyc)`: a master (`dis`) publishes input and collects
//! results; workers (`env`) wait for the publication, compute, and publish
//! results. The data-parallel computation itself is thread-local and
//! irrelevant to safety — what each skeleton checks is the *publication
//! discipline*: a consumer that synchronized on a ready-flag must observe
//! the data written before the flag (the RA message-passing guarantee).
//! Every kernel is therefore **safe**; what distinguishes them is the
//! structure of the handshake (number of phases, split inputs, reduction
//! direction), reflecting the source programs' fixed-size loops (unrolled,
//! per the paper).

use crate::{Benchmark, Expected};
use parra_program::builder::SystemBuilder;

/// `histogram`: the master publishes the image, workers bin pixels into
/// per-bucket counters and raise `done`; the master reading `done` must
/// see the bucket write.
pub fn histogram() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let input = b.var("input");
    let bucket_r = b.var("bucket_r");
    let bucket_g = b.var("bucket_g");
    let done = b.var("done");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.load(r, input).assume_eq(r, 1);
    env.choice(
        |p| {
            p.store(bucket_r, 1);
        },
        |p| {
            p.store(bucket_g, 1);
        },
    );
    env.store(done, 1);
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    let t = d.reg("t");
    d.store(input, 1);
    d.load(s, done).assume_eq(s, 1);
    // Seeing done = 1 implies some bucket write is visible.
    d.load(s, bucket_r).load(t, bucket_g);
    d.assume_eq(s, 0).assume_eq(t, 0).assert_false();
    let d = d.finish();
    Benchmark {
        name: "histogram",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); pixel loop is thread-local",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `kmeans`: two assignment/update rounds (the source's fixed iteration
/// count, unrolled). Each round is a full handshake.
pub fn kmeans() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let means0 = b.var("means0");
    let assign0 = b.var("assign0");
    let means1 = b.var("means1");
    let assign1 = b.var("assign1");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.load(r, means0).assume_eq(r, 1).store(assign0, 1);
    env.load(r, means1).assume_eq(r, 1).store(assign1, 1);
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    d.store(means0, 1);
    d.load(s, assign0).assume_eq(s, 1);
    d.store(means1, 1);
    d.load(s, assign1).assume_eq(s, 1);
    // After round 2's assignment, round 1's means must be visible.
    d.load(s, means0).assume_eq(s, 0).assert_false();
    let d = d.finish();
    Benchmark {
        name: "kmeans",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); fixed iteration count unrolled",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `linear-regression`: workers produce partial sums (`sx`, `sy`) guarded
/// by one ready flag; the master must see both after the flag.
pub fn linear_regression() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let points = b.var("points");
    let sx = b.var("sx");
    let sy = b.var("sy");
    let ready = b.var("ready");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.load(r, points).assume_eq(r, 1);
    env.store(sx, 1).store(sy, 1).store(ready, 1);
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    let t = d.reg("t");
    d.store(points, 1);
    d.load(s, ready).assume_eq(s, 1);
    d.load(s, sx).load(t, sy);
    // Both partial sums were written before ready.
    d.choice(
        |p| {
            p.assume_eq(s, 0);
            p.assert_false();
        },
        |p| {
            p.assume_eq(t, 0);
            p.assert_false();
        },
    );
    let d = d.finish();
    Benchmark {
        name: "linear-regression",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `matrix-multiply`: two input blocks published separately; a worker
/// waits for both and publishes its output block. The master must then
/// see the output after the worker's flag.
pub fn matrix_multiply() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let block_a = b.var("block_a");
    let block_b = b.var("block_b");
    let out = b.var("out");
    let done = b.var("done");
    let mut env = b.program("worker");
    let r = env.reg("r");
    let s = env.reg("s");
    env.load(r, block_a)
        .assume_eq(r, 1)
        .load(s, block_b)
        .assume_eq(s, 1)
        .store(out, 1)
        .store(done, 1);
    let env = env.finish();
    let mut d = b.program("master");
    let t = d.reg("t");
    d.store(block_a, 1).store(block_b, 1);
    d.load(t, done).assume_eq(t, 1);
    d.load(t, out).assume_eq(t, 0).assert_false();
    let d = d.finish();
    Benchmark {
        name: "matrix-multiply",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); block loops are thread-local",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `pca`: two dependent phases (mean, then covariance): phase 2 input is
/// gated on phase 1 output *through the master*.
pub fn pca() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let data = b.var("data");
    let mean = b.var("mean");
    let go2 = b.var("go2");
    let cov = b.var("cov");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.choice(
        |p| {
            // Phase 1 worker: data → mean.
            p.load(r, data);
            p.assume_eq(r, 1);
            p.store(mean, 1);
        },
        |p| {
            // Phase 2 worker: needs the go-ahead, then covariance; the
            // mean must be visible through go2.
            p.load(r, go2);
            p.assume_eq(r, 1);
            p.load(r, mean);
            p.assume_eq(r, 0);
            p.assert_false();
        },
    );
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    d.store(data, 1);
    d.load(s, mean).assume_eq(s, 1);
    d.store(go2, 1);
    d.load(s, cov);
    let d = d.finish();
    Benchmark {
        name: "pca",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); two phases",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `string-match`: workers scan chunks and set a found-flag; the master
/// reads the flag and then the match offset, which must be visible.
pub fn string_match() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let text = b.var("text");
    let offset = b.var("offset");
    let found = b.var("found");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.load(r, text).assume_eq(r, 1);
    env.choice(
        |p| {
            // Match: record the offset, then raise the flag.
            p.store(offset, 1);
            p.store(found, 1);
        },
        |p| {
            // No match in this chunk.
            p.skip();
        },
    );
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    d.store(text, 1);
    d.load(s, found).assume_eq(s, 1);
    d.load(s, offset).assume_eq(s, 0).assert_false();
    let d = d.finish();
    Benchmark {
        name: "string-match",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `word-count`: two counters, each guarded by its own flag; the master
/// joins on both flags and must see both counters.
pub fn word_count() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let text = b.var("text");
    let count_a = b.var("count_a");
    let flag_a = b.var("flag_a");
    let count_b = b.var("count_b");
    let flag_b = b.var("flag_b");
    let mut env = b.program("worker");
    let r = env.reg("r");
    env.load(r, text).assume_eq(r, 1);
    env.choice(
        |p| {
            p.store(count_a, 1);
            p.store(flag_a, 1);
        },
        |p| {
            p.store(count_b, 1);
            p.store(flag_b, 1);
        },
    );
    let env = env.finish();
    let mut d = b.program("master");
    let s = d.reg("s");
    let t = d.reg("t");
    d.store(text, 1);
    d.load(s, flag_a).assume_eq(s, 1);
    d.load(t, flag_b).assume_eq(t, 1);
    d.load(s, count_a).load(t, count_b);
    d.choice(
        |p| {
            p.assume_eq(s, 0);
            p.assert_false();
        },
        |p| {
            p.assume_eq(t, 0);
            p.assert_false();
        },
    );
    let d = d.finish();
    Benchmark {
        name: "word-count",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `sort-pthread`: a two-level merge: leaf sorters publish sorted runs,
/// a merger (also `env`) waits for both runs and publishes the merge; the
/// master must see the runs through the merge flag (transitive message
/// passing).
pub fn sort_pthread() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let input = b.var("input");
    let run_a = b.var("run_a");
    let run_b = b.var("run_b");
    let merged = b.var("merged");
    let mut env = b.program("worker");
    let r = env.reg("r");
    let s = env.reg("s");
    env.choice(
        |p| {
            // Leaf sorter A / B.
            p.load(r, input);
            p.assume_eq(r, 1);
            p.choice(
                |p| {
                    p.store(run_a, 1);
                },
                |p| {
                    p.store(run_b, 1);
                },
            );
        },
        |p| {
            // Merger: joins both runs, publishes the merge.
            p.load(r, run_a);
            p.assume_eq(r, 1);
            p.load(s, run_b);
            p.assume_eq(s, 1);
            p.store(merged, 1);
        },
    );
    let env = env.finish();
    let mut d = b.program("master");
    let t = d.reg("t");
    d.store(input, 1);
    d.load(t, merged).assume_eq(t, 1);
    // Transitivity: the merge flag carries both runs.
    d.load(t, run_a).assume_eq(t, 0).assert_false();
    let d = d.finish();
    Benchmark {
        name: "sort-pthread",
        source: "Phoenix-2.0 [29]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); two-level merge",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    fn kernels() -> Vec<Benchmark> {
        vec![
            histogram(),
            kmeans(),
            linear_regression(),
            matrix_multiply(),
            pca(),
            string_match(),
            word_count(),
            sort_pthread(),
        ]
    }

    #[test]
    fn all_kernels_classify_as_nocas_acyc() {
        for k in kernels() {
            let class = SystemClass::of(&k.system);
            assert!(class.env.nocas && class.env.acyc, "{}", k.name);
            assert!(class.is_decidable_fragment(), "{}", k.name);
        }
    }

    #[test]
    fn all_kernels_expected_safe() {
        for k in kernels() {
            assert_eq!(k.expected, Expected::Safe, "{}", k.name);
        }
    }

    #[test]
    fn kernels_are_structurally_distinct() {
        let mut shapes: Vec<String> = kernels()
            .iter()
            .map(|k| parra_program::pretty::system_to_string(&k.system))
            .collect();
        shapes.sort();
        shapes.dedup();
        assert_eq!(shapes.len(), kernels().len());
    }
}
