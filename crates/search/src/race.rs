//! Racing N *heterogeneous* jobs: first decisive result wins.
//!
//! The rest of this crate parallelises one search by sharding its
//! frontier; this module parallelises a *portfolio* — N different
//! algorithms attacking the same problem, where any one decisive answer
//! makes the others redundant. The scheduler:
//!
//! 1. spawns one scoped thread per job (jobs are closures, so the racers
//!    can be completely different engines);
//! 2. lets the first job to return a *decisive* result (as judged by the
//!    caller's predicate) claim the win — exactly one winner, decided by
//!    an atomic claim, even if two jobs finish decisively back-to-back;
//! 3. invokes the caller's `on_win` callback at claim time, from the
//!    winning job's thread — this is where the caller cancels the losers
//!    via a race-scoped [`CancelToken`](../parra_limits/struct.CancelToken.html);
//! 4. joins everything and returns *all* results in job order, plus the
//!    winner's index.
//!
//! Every job runs to completion (typically fast, once cancelled) and
//! every result is returned: losers are data — the portfolio scheduler
//! records them as metadata rather than discarding them. A job that
//! panics poisons nothing: its slot reports the panic payload and the
//! race goes on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The outcome of [`race`]: every job's result, in job order, and which
/// job (if any) claimed the decisive win.
#[derive(Debug)]
pub struct RaceOutcome<T> {
    /// One entry per job, in the order the jobs were passed.
    /// `Err(message)` if the job panicked.
    pub results: Vec<Result<T, String>>,
    /// Index of the first job whose result was decisive, if any.
    pub winner: Option<usize>,
}

/// Sentinel for "no winner claimed yet".
const NO_WINNER: usize = usize::MAX;

fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Races `jobs` to the first decisive result.
///
/// `decisive` judges each job's result as it arrives; the first decisive
/// one claims the win and `on_win` fires exactly once, immediately, on
/// the winning job's thread (before the other jobs are joined). All jobs
/// are joined before returning, so `on_win` must make the losers finish
/// — in `parra` it cancels a race-scoped `CancelToken` the losers poll.
///
/// With zero jobs the outcome is empty with no winner.
pub fn race<T, F>(
    jobs: Vec<Box<dyn FnOnce() -> T + Send + '_>>,
    decisive: F,
    on_win: impl Fn() + Sync,
) -> RaceOutcome<T>
where
    T: Send,
    F: Fn(&T) -> bool + Sync,
{
    let n = jobs.len();
    let winner = AtomicUsize::new(NO_WINNER);
    let mut results: Vec<Option<Result<T, String>>> = Vec::new();
    results.resize_with(n, || None);

    std::thread::scope(|scope| {
        let winner = &winner;
        let decisive = &decisive;
        let on_win = &on_win;
        let mut handles = Vec::with_capacity(n);
        for (idx, job) in jobs.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(job)).map_err(payload_msg);
                if let Ok(value) = &result {
                    if decisive(value)
                        && winner
                            .compare_exchange(NO_WINNER, idx, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        on_win();
                    }
                }
                result
            }));
        }
        for (idx, handle) in handles.into_iter().enumerate() {
            // The closure catches job panics, so join only fails if the
            // scheduler itself is broken.
            results[idx] = Some(handle.join().expect("race worker survives"));
        }
    });

    RaceOutcome {
        results: results.into_iter().map(|r| r.expect("joined")).collect(),
        winner: match winner.load(Ordering::Acquire) {
            NO_WINNER => None,
            idx => Some(idx),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::mpsc;

    #[test]
    fn empty_race_has_no_winner() {
        let out = race(
            Vec::<Box<dyn FnOnce() -> u32 + Send>>::new(),
            |_| true,
            || {},
        );
        assert!(out.results.is_empty());
        assert_eq!(out.winner, None);
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..8)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = race(jobs, |_| false, || {});
        assert_eq!(
            out.results
                .into_iter()
                .map(Result::unwrap)
                .collect::<Vec<_>>(),
            (0usize..8).map(|i| i * 10).collect::<Vec<_>>()
        );
        assert_eq!(out.winner, None, "nothing decisive, nothing won");
    }

    #[test]
    fn first_decisive_wins_and_fires_cancel_once() {
        // Job 1 answers decisively right away; job 0 blocks until the
        // win callback fires, proving on_win runs before the join.
        let (tx, rx) = mpsc::channel::<()>();
        let fired = AtomicBool::new(false);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(move || {
                rx.recv().expect("winner signals");
                -1 // indecisive
            }),
            Box::new(|| 42),
        ];
        let out = race(
            jobs,
            |v| *v >= 0,
            || {
                assert!(!fired.swap(true, Ordering::SeqCst), "on_win fired twice");
                tx.send(()).expect("loser still waiting");
            },
        );
        assert_eq!(out.winner, Some(1));
        assert_eq!(out.results[1].as_ref().unwrap(), &42);
        assert_eq!(out.results[0].as_ref().unwrap(), &-1);
        assert!(fired.load(Ordering::SeqCst));
    }

    #[test]
    fn all_decisive_claims_exactly_one_winner() {
        let wins = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0u32..6)
            .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        let out = race(
            jobs,
            |_| true,
            || {
                wins.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        let w = out.winner.expect("someone won");
        assert!(w < 6);
    }

    #[test]
    fn panicking_job_reports_and_race_continues() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("engine exploded")), Box::new(|| 7)];
        let out = race(jobs, |v| *v == 7, || {});
        assert_eq!(out.winner, Some(1));
        let err = out.results[0].as_ref().unwrap_err();
        assert!(err.contains("engine exploded"), "got: {err}");
        assert_eq!(out.results[1].as_ref().unwrap(), &7);
    }
}
