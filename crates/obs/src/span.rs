//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`Recorder::span`](crate::Recorder::span) and
//! closed by dropping the returned [`SpanGuard`] (RAII). Nesting is
//! tracked per thread: a span opened while another is live on the same
//! thread becomes its child, giving the
//! `verify → classify → transform → engine → phase` tree the engines
//! produce. Finished spans are kept in a central store for rendering
//! ([`SpanStore::render_tree`]) and for the Chrome-trace emitter
//! ([`trace`](crate::trace)).

use std::cell::Cell;
use std::sync::Mutex;
use std::time::Instant;

/// One recorded span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The span name, e.g. `engine:simplified-reach`.
    pub name: String,
    /// Start, µs since the recorder's epoch.
    pub start_us: u64,
    /// Duration in µs; `None` while the span is still open.
    pub dur_us: Option<u64>,
    /// Index of the parent span in the store.
    pub parent: Option<usize>,
    /// An id for the opening OS thread (dense, per recorder).
    pub tid: u64,
    /// Attached `key=value` arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// A span argument value.
#[derive(Debug, Clone)]
pub enum ArgValue {
    /// An integer.
    U64(u64),
    /// A string.
    Str(String),
}

thread_local! {
    /// The innermost open span (store index) on this thread, plus the
    /// identity of the store it belongs to (recorders may coexist).
    static CURRENT: Cell<(usize, Option<usize>)> = const { Cell::new((0, None)) };
}

/// The central span store of one enabled recorder.
#[derive(Debug, Default)]
pub struct SpanStore {
    /// Identity used to keep thread-local parent tracking per recorder.
    pub(crate) id: usize,
    records: Mutex<Vec<SpanRecord>>,
}

static NEXT_STORE_ID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

impl SpanStore {
    pub(crate) fn new() -> SpanStore {
        SpanStore {
            id: NEXT_STORE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn open(&self, name: &str, epoch: Instant) -> usize {
        let parent = CURRENT.with(|c| {
            let (store, idx) = c.get();
            if store == self.id {
                idx
            } else {
                None
            }
        });
        let tid = current_thread_id();
        let mut recs = self.records.lock().unwrap();
        let idx = recs.len();
        recs.push(SpanRecord {
            name: name.to_string(),
            start_us: epoch.elapsed().as_micros() as u64,
            dur_us: None,
            parent,
            tid,
            args: Vec::new(),
        });
        CURRENT.with(|c| c.set((self.id, Some(idx))));
        idx
    }

    pub(crate) fn close(&self, idx: usize, epoch: Instant) {
        let mut recs = self.records.lock().unwrap();
        let parent = recs[idx].parent;
        let start = recs[idx].start_us;
        recs[idx].dur_us = Some((epoch.elapsed().as_micros() as u64).saturating_sub(start));
        drop(recs);
        CURRENT.with(|c| c.set((self.id, parent)));
    }

    pub(crate) fn add_arg(&self, idx: usize, key: &str, val: ArgValue) {
        self.records.lock().unwrap()[idx]
            .args
            .push((key.to_string(), val));
    }

    /// A copy of all recorded spans (open spans have `dur_us == None`).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Renders the span forest as an indented tree with timings, one span
    /// per line, children in start order.
    pub fn render_tree(&self) -> String {
        let recs = self.records();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
        let mut roots = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            match r.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let r = &recs[i];
            let dur = match r.dur_us {
                Some(us) => format_us(us),
                None => "(open)".to_string(),
            };
            let mut line = format!(
                "{:indent$}{:<width$} {:>9}",
                "",
                r.name,
                dur,
                indent = depth * 2,
                width = 32usize.saturating_sub(depth * 2)
            );
            if !r.args.is_empty() {
                line.push_str("  {");
                for (k, (key, val)) in r.args.iter().enumerate() {
                    if k > 0 {
                        line.push_str(", ");
                    }
                    match val {
                        ArgValue::U64(n) => line.push_str(&format!("{key}: {n}")),
                        ArgValue::Str(s) => line.push_str(&format!("{key}: {s}")),
                    }
                }
                line.push('}');
            }
            out.push_str(&line);
            out.push('\n');
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// A dense per-process id for the current OS thread.
pub(crate) fn current_thread_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_ordering() {
        let store = SpanStore::new();
        let epoch = Instant::now();
        let a = store.open("outer", epoch);
        let b = store.open("inner-1", epoch);
        store.close(b, epoch);
        let c = store.open("inner-2", epoch);
        store.add_arg(c, "states", ArgValue::U64(7));
        store.close(c, epoch);
        store.close(a, epoch);

        let recs = store.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].parent, None);
        assert_eq!(recs[1].parent, Some(0));
        assert_eq!(recs[2].parent, Some(0));
        assert!(recs.iter().all(|r| r.dur_us.is_some()));

        let tree = store.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("outer"));
        assert!(lines[1].starts_with("  inner-1"));
        assert!(lines[2].starts_with("  inner-2"));
        assert!(lines[2].contains("states: 7"));
    }

    #[test]
    fn sibling_after_close_attaches_to_grandparent() {
        let store = SpanStore::new();
        let epoch = Instant::now();
        let root = store.open("root", epoch);
        let child = store.open("child", epoch);
        let grandchild = store.open("grandchild", epoch);
        store.close(grandchild, epoch);
        store.close(child, epoch);
        let sibling = store.open("sibling", epoch);
        store.close(sibling, epoch);
        store.close(root, epoch);
        let recs = store.records();
        assert_eq!(recs[3].name, "sibling");
        assert_eq!(recs[3].parent, Some(root));
        assert_eq!(recs[2].parent, Some(child));
    }

    #[test]
    fn two_stores_do_not_share_parents() {
        let s1 = SpanStore::new();
        let s2 = SpanStore::new();
        let epoch = Instant::now();
        let a = s1.open("a", epoch);
        let b = s2.open("b", epoch); // different store: no parent
        s2.close(b, epoch);
        s1.close(a, epoch);
        assert_eq!(s2.records()[0].parent, None);
    }
}
