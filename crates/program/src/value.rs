//! The finite data domain `Dom` and its values.
//!
//! The paper works with a finite data domain (Section 4 assumes this
//! explicitly for the PSPACE upper bound). We fix `Dom = {0, 1, …, size-1}`
//! with `d_init = 0`: the initial value of all shared variables and
//! registers.

use std::fmt;

/// A value from the data domain, `d ∈ Dom`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Val(pub u32);

impl Val {
    /// The initial value `d_init` held by every shared variable and register.
    pub const INIT: Val = Val(0);

    /// The value as a `usize`, for direct array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this value is "true" when used as a boolean (non-zero).
    pub fn as_bool(self) -> bool {
        self.0 != 0
    }

    /// `1` for `true`, `0` for `false`.
    pub fn from_bool(b: bool) -> Val {
        Val(b as u32)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Val {
    fn from(v: u32) -> Self {
        Val(v)
    }
}

/// The finite data domain `Dom = {0, …, size-1}`.
///
/// All arithmetic in [`Expr`](crate::expr::Expr) evaluation wraps modulo
/// `size`, so every expression is total on the domain.
///
/// # Example
///
/// ```
/// use parra_program::value::{Dom, Val};
///
/// let dom = Dom::new(4);
/// assert!(dom.contains(Val(3)));
/// assert!(!dom.contains(Val(4)));
/// assert_eq!(dom.wrap(7), Val(3));
/// assert_eq!(dom.iter().count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dom {
    size: u32,
}

impl Dom {
    /// Creates a domain of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`; a domain must contain at least `d_init = 0`.
    pub fn new(size: u32) -> Dom {
        assert!(size > 0, "data domain must be non-empty");
        Dom { size }
    }

    /// The boolean domain `{0, 1}` — the domain of *PureRA* programs
    /// (Section 5) and of most litmus tests.
    pub fn boolean() -> Dom {
        Dom::new(2)
    }

    /// Number of values in the domain.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `v` belongs to the domain.
    pub fn contains(&self, v: Val) -> bool {
        v.0 < self.size
    }

    /// Reduces an unbounded integer into the domain (modulo `size`).
    pub fn wrap(&self, raw: u64) -> Val {
        Val((raw % self.size as u64) as u32)
    }

    /// Iterates over all domain values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Val> {
        (0..self.size).map(Val)
    }
}

impl Default for Dom {
    /// The boolean domain.
    fn default() -> Self {
        Dom::boolean()
    }
}

impl fmt::Display for Dom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{0..{}}}", self.size - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_zero() {
        assert_eq!(Val::INIT, Val(0));
        assert!(!Val::INIT.as_bool());
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Val::from_bool(true), Val(1));
        assert_eq!(Val::from_bool(false), Val(0));
        assert!(Val(5).as_bool());
    }

    #[test]
    fn domain_membership_and_wrap() {
        let dom = Dom::new(3);
        assert!(dom.contains(Val(0)));
        assert!(dom.contains(Val(2)));
        assert!(!dom.contains(Val(3)));
        assert_eq!(dom.wrap(3), Val(0));
        assert_eq!(dom.wrap(5), Val(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        Dom::new(0);
    }

    #[test]
    fn boolean_domain() {
        let b = Dom::boolean();
        assert_eq!(b.size(), 2);
        assert_eq!(b, Dom::default());
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![Val(0), Val(1)]);
    }

    #[test]
    fn display() {
        assert_eq!(Dom::new(4).to_string(), "{0..3}");
        assert_eq!(Val(9).to_string(), "9");
    }
}
