//! Portfolio-race benchmark and regression gate.
//!
//! Races the full engine portfolio ([`Verifier::race`]) on a litmus
//! subset and records best-of-N wall-clock per benchmark, next to the
//! sequential `--all-engines` sum over the same engines. The race's win
//! comes from cancelling the losers as soon as one engine answers
//! decisively — on a single-core runner there is no parallel speedup to
//! measure, only the cancellation saving — so the gate compares raced
//! wall-clock against this file's own committed baseline rather than
//! against the sequential sum (which is recorded as an informational
//! ratio).
//!
//! ```text
//! bench_race [--out FILE]        # measure and write FILE (default BENCH_race.json)
//! bench_race --check BASELINE    # measure and fail (exit 1) on regression
//! ```
//!
//! The check fails when a raced entry's wall-clock exceeds the baseline
//! by more than 25% *and* by more than an absolute 20 ms floor. Every
//! measurement also asserts the race invariant: the raced verdict equals
//! the sequential aggregate over the same engines.

use parra_core::verify::{aggregate_verdicts, EngineId, Verdict, Verifier, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use std::process::ExitCode;
use std::time::Duration;

/// The litmus subset: a mix of safe and unsafe benchmarks, so both "a
/// decisive Safe cancels the fleet" and "a decisive Unsafe cancels the
/// fleet" paths are timed.
const BENCHES: &[&str] = &[
    "producer-consumer",
    "peterson-ra",
    "dekker",
    "lamport-2-ra",
    "sb",
    "iriw",
];

/// Timed repetitions per entry; the best is recorded.
const REPS: usize = 3;

/// Relative wall-clock tolerance of the `--check` gate.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which drift is timer noise.
const FLOOR_US: u64 = 20_000;

struct Entry {
    bench: String,
    verdict: String,
    /// The winning engine of the *last* repetition (wall-clock-bound,
    /// informational only).
    winner: String,
    raced_us: u64,
    sequential_us: u64,
}

impl Entry {
    /// Raced/sequential wall-clock ratio in permille (1000 = parity;
    /// lower is better). Informational — single-core runners only see
    /// the cancellation saving.
    fn speedup_permille(&self) -> u64 {
        if self.sequential_us == 0 {
            return 1000;
        }
        self.raced_us.saturating_mul(1000) / self.sequential_us
    }
}

fn measure() -> Vec<Entry> {
    let mut out = Vec::new();
    for name in BENCHES {
        let bench = parra_litmus::by_name(name)
            .unwrap_or_else(|| panic!("unknown litmus benchmark `{name}`"));
        let options = VerifierOptions {
            threads: 1,
            // A generous race-wide deadline: the gate should fail on a
            // slow race, not hang on a broken one.
            timeout: Some(Duration::from_secs(3600)),
            ..Default::default()
        };
        let verifier =
            Verifier::new(&bench.system, options).unwrap_or_else(|e| panic!("{name}: {e}"));

        let mut sequential_us = u64::MAX;
        let mut sequential_verdict = Verdict::Unknown;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            let verdicts: Vec<(EngineId, Verdict)> = EngineId::ALL
                .iter()
                .map(|&e| (e, verifier.run_isolated(e).verdict))
                .collect();
            sequential_us = sequential_us.min(start.elapsed().as_micros() as u64);
            sequential_verdict = aggregate_verdicts(&verdicts)
                .unwrap_or_else(|e| panic!("{name}: sequential disagreement: {e}"));
        }

        let mut raced_us = u64::MAX;
        let mut winner = String::from("(none)");
        let mut verdict = Verdict::Unknown;
        for _ in 0..REPS {
            let race = verifier
                .race(&EngineId::ALL)
                .unwrap_or_else(|e| panic!("{name}: race disagreement: {e}"));
            assert_eq!(
                race.verdict, sequential_verdict,
                "{name}: raced verdict diverged from the sequential aggregate"
            );
            raced_us = raced_us.min(race.duration.as_micros() as u64);
            verdict = race.verdict;
            if let Some(w) = race.winner_engine() {
                winner = w.to_string();
            }
        }
        out.push(Entry {
            bench: name.to_string(),
            verdict: verdict.to_string(),
            winner,
            raced_us,
            sequential_us,
        });
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut items = Vec::new();
    for e in entries {
        let mut w = ObjWriter::new();
        w.str_field("bench", &e.bench);
        w.str_field("verdict", &e.verdict);
        w.str_field("winner", &e.winner);
        w.num_field("raced_us", e.raced_us);
        w.num_field("sequential_us", e.sequential_us);
        w.num_field("speedup_permille", e.speedup_permille());
        items.push(w.finish());
    }
    let mut root = ObjWriter::new();
    root.num_field("threads", 1);
    root.raw_field("entries", &format!("[{}]", items.join(",")));
    let mut buf = root.finish();
    buf.push('\n');
    buf
}

fn parse_baseline(text: &str) -> Result<Vec<(String, u64)>, String> {
    let root = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("baseline has no `entries` array")?;
    let mut out = Vec::new();
    for e in entries {
        out.push((
            e.get("bench")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `bench`")?
                .to_string(),
            e.get("raced_us")
                .and_then(Value::as_u64)
                .ok_or("baseline entry missing numeric `raced_us`")?,
        ));
    }
    Ok(out)
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

fn check(entries: &[Entry], baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let baseline = parse_baseline(&text)?;
    let mut failures = Vec::new();
    for e in entries {
        let Some((_, base_us)) = baseline.iter().find(|(b, _)| *b == e.bench) else {
            println!("note: {} has no baseline entry (new benchmark?)", e.bench);
            continue;
        };
        let marker = if regresses(*base_us, e.raced_us) {
            failures.push(format!(
                "{}: raced {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
                e.bench,
                e.raced_us,
                base_us,
                (TOLERANCE - 1.0) * 100.0,
                FLOOR_US / 1000
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<22} raced {:>9} µs (baseline {:>9}, vs sequential {:>5}‰, winner {}) {}",
            e.bench,
            e.raced_us,
            base_us,
            e.speedup_permille(),
            e.winner,
            marker
        );
    }
    if failures.is_empty() {
        println!(
            "raced wall-clock within tolerance for all {} entries",
            entries.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("race bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let entries = measure();
    match flag("--check") {
        Some(baseline) => match check(&entries, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_race: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_race.json".into());
            let jsonv = to_json(&entries);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_race: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            for e in &entries {
                println!(
                    "{:<22} raced {:>9} µs  sequential {:>9} µs  ratio {:>5}‰  winner {}",
                    e.bench,
                    e.raced_us,
                    e.sequential_us,
                    e.speedup_permille(),
                    e.winner
                );
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let entries = vec![Entry {
            bench: "dekker".into(),
            verdict: "UNSAFE".into(),
            winner: "simplified-reach".into(),
            raced_us: 900,
            sequential_us: 1800,
        }];
        assert_eq!(entries[0].speedup_permille(), 500);
        let parsed = parse_baseline(&to_json(&entries)).unwrap();
        assert_eq!(parsed, vec![("dekker".to_string(), 900)]);
    }
}
