//! A byte-tracking global allocator.
//!
//! Generalizes the counting allocator used by the Datalog arena
//! regression test (`datalog/tests/arena_alloc.rs`): instead of counting
//! allocation *events* it tracks live heap *bytes*, which is what a
//! memory budget needs. The `parra` binary (and any test binary that
//! wants memory limits enforced) installs it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: parra_limits::TrackingAlloc = parra_limits::TrackingAlloc::new();
//! ```
//!
//! Processes that skip this get [`heap_in_use`] `== None` and memory
//! limits are not enforced — never wrongly enforced.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Live heap bytes allocated through [`TrackingAlloc`].
static IN_USE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`IN_USE`] over the process lifetime.
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Whether a [`TrackingAlloc`] has served at least one allocation.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A `GlobalAlloc` that forwards to [`System`] and keeps a live-byte
/// counter readable via [`heap_in_use`].
///
/// The counter is approximate in the usual ways (allocator slack is not
/// visible, `Relaxed` counters may lag by a few operations under
/// contention) but tracks real usage closely enough for a budget that is
/// checked at round granularity.
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// A new tracking allocator, for use in a `#[global_allocator]` static.
    pub const fn new() -> TrackingAlloc {
        TrackingAlloc
    }
}

impl Default for TrackingAlloc {
    fn default() -> TrackingAlloc {
        TrackingAlloc::new()
    }
}

// SAFETY: forwards every operation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            INSTALLED.store(true, Ordering::Relaxed);
            let now = IN_USE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        IN_USE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            INSTALLED.store(true, Ordering::Relaxed);
            let now = IN_USE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            INSTALLED.store(true, Ordering::Relaxed);
            let now = IN_USE.fetch_add(new_size, Ordering::Relaxed) + new_size;
            PEAK.fetch_max(now, Ordering::Relaxed);
            IN_USE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

/// Live heap bytes, or `None` when no [`TrackingAlloc`] is installed in
/// this process (memory budgets are then not enforced).
pub fn heap_in_use() -> Option<usize> {
    if INSTALLED.load(Ordering::Relaxed) {
        Some(IN_USE.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// The high-water mark of live heap bytes over the process lifetime, or
/// `None` when no [`TrackingAlloc`] is installed. The flight recorder
/// reports this as the memory high-watermark in `run_end` events.
pub fn heap_peak() -> Option<usize> {
    if INSTALLED.load(Ordering::Relaxed) {
        Some(PEAK.load(Ordering::Relaxed))
    } else {
        None
    }
}
