//! Property-based tests (proptest) for the core data structures and the
//! executable lemmas.

use proptest::prelude::*;

use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_ra::lifting::Lifting;
use parra_ra::supply::{duplicate_env_message, env_store_indices, Placement};
use parra_ra::timestamp::Timestamp;
use parra_ra::{Instance, Trace};
use parra_simplified::timestamp::ATime;
use parra_simplified::view::AView;

// ---------------------------------------------------------------------
// Abstract timestamps: a total order interleaving slots and gaps
// ---------------------------------------------------------------------

fn atime_strategy() -> impl Strategy<Value = ATime> {
    (0u32..20, prop::bool::ANY).prop_map(|(i, plus)| {
        if plus {
            ATime::Plus(i)
        } else {
            ATime::Int(i)
        }
    })
}

proptest! {
    #[test]
    fn atime_order_total_and_transitive(
        a in atime_strategy(),
        b in atime_strategy(),
        c in atime_strategy(),
    ) {
        // Totality.
        prop_assert!(a <= b || b <= a);
        // Antisymmetry.
        if a <= b && b <= a {
            prop_assert_eq!(a, b);
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // The defining interleaving: Int(i) < Plus(i) < Int(i+1).
        prop_assert!(ATime::Int(a.floor()) <= a);
        prop_assert!(a <= ATime::Plus(a.floor()));
    }

    #[test]
    fn aview_join_is_lattice_join(
        xs in prop::collection::vec(atime_strategy(), 3),
        ys in prop::collection::vec(atime_strategy(), 3),
        zs in prop::collection::vec(atime_strategy(), 3),
    ) {
        let a = AView::from_times(xs);
        let b = AView::from_times(ys);
        let c = AView::from_times(zs);
        // Commutative, idempotent, associative.
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        // Least upper bound.
        let j = a.join(&b);
        prop_assert!(a.leq(&j) && b.leq(&j));
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(j.leq(&c));
        }
    }
}

// ---------------------------------------------------------------------
// Expressions: evaluation stays in the domain
// ---------------------------------------------------------------------

fn expr_strategy(n_regs: u32, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u32..8).prop_map(Expr::val),
        (0..n_regs).prop_map(|r| Expr::reg(parra_program::ident::RegId(r))),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| e.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
    .boxed()
}

proptest! {
    #[test]
    fn expr_eval_in_domain(
        e in expr_strategy(2, 3),
        dom_size in 1u32..6,
        r0 in 0u32..6,
        r1 in 0u32..6,
    ) {
        let dom = parra_program::value::Dom::new(dom_size);
        let mut rv = parra_program::expr::RegVal::new(2);
        rv.set(parra_program::ident::RegId(0), dom.wrap(r0 as u64));
        rv.set(parra_program::ident::RegId(1), dom.wrap(r1 as u64));
        let v = e.eval(&rv, dom);
        prop_assert!(dom.contains(v), "value {v} outside {dom}");
    }
}

// ---------------------------------------------------------------------
// Lemma 3.1 (lifting) and Lemma 3.3 (infinite supply) on random traces
// ---------------------------------------------------------------------

fn test_system() -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let z = b.var("z");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, y).store(x, 1).store(z, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.store(y, 1).load(s, x).cas(z, 1, 0);
    let d = d.finish();
    b.build(env, vec![d])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma_3_1_valid_liftings_replay(seed in 0u64..10_000, stretch in 1u64..5) {
        let mut s = seed;
        let mut chooser = move |k: usize| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        };
        let trace = Trace::random(Instance::new(test_system(), 2), 18, &mut chooser);
        // A spacing lift that respects CAS pairs is RA-valid for every
        // computation; Lemma 3.1 promises the lifted run replays.
        let lift = Lifting::spacing_with_holes(&trace);
        let lifted = lift.apply(&trace);
        prop_assert!(lifted.is_ok(), "{:?}", lifted.err());
        // Uniform stretches are valid exactly when no CAS pair occurs (the
        // validator must reject the rest up front, never at replay).
        let uniform = Lifting::spacing(&trace, 1 + stretch);
        match uniform.validate(&trace) {
            Ok(()) => prop_assert!(uniform.apply(&trace).is_ok()),
            Err(e) => prop_assert!(
                matches!(e, parra_ra::lifting::LiftingError::CasPairTorn { .. }),
                "unexpected validation error {e}"
            ),
        }
    }

    #[test]
    fn lemma_3_3_duplication(seed in 0u64..10_000) {
        let mut s = seed;
        let mut chooser = move |k: usize| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        };
        let trace = Trace::random(Instance::new(test_system(), 2), 22, &mut chooser);
        for idx in env_store_indices(&trace) {
            for placement in [Placement::Adjacent, Placement::High] {
                let dup = duplicate_env_message(&trace, idx, placement);
                let dup = match dup {
                    Ok(d) => d,
                    Err(e) => return Err(TestCaseError::fail(format!("idx {idx}: {e}"))),
                };
                prop_assert_eq!(dup.original.var, dup.clone.var);
                prop_assert_eq!(dup.original.val, dup.clone.val);
                prop_assert!(dup.trace.last().memory.contains(&dup.original));
                prop_assert!(dup.trace.last().memory.contains(&dup.clone));
                if placement == Placement::High {
                    // Higher than every other message on the variable.
                    for m in dup.trace.last().memory.on_var(dup.clone.var) {
                        if *m != dup.clone {
                            prop_assert!(dup.clone.timestamp() > m.timestamp());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn concrete_view_join_monotone_along_traces(seed in 0u64..10_000) {
        // Thread views only ever grow along a computation (the join
        // discipline) — an invariant of the Figure 2 rules.
        let mut s = seed;
        let mut chooser = move |k: usize| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        };
        let trace = Trace::random(Instance::new(test_system(), 2), 20, &mut chooser);
        for step in 0..trace.len() {
            let before = trace.config_at(step);
            let after = trace.config_at(step + 1);
            for (b, a) in before.threads.iter().zip(&after.threads) {
                prop_assert!(b.view.leq(&a.view), "view shrank at step {step}");
            }
            // Memory only grows.
            prop_assert!(after.memory.len() >= before.memory.len());
        }
        let _ = Timestamp::ZERO;
    }
}

// ---------------------------------------------------------------------
// Datalog: linear evaluator agrees with the general one
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linear_and_general_evaluators_agree(
        edges in prop::collection::vec((0u32..6, 0u32..6), 1..12),
        start in 0u32..6,
        goal in 0u32..6,
    ) {
        use parra_datalog::ast::{Atom, Program, Term, GroundAtom};
        let mut p = Program::new();
        let reach = p.predicate("reach", 1);
        let consts: Vec<_> = (0..6).map(|i| p.constant(&format!("n{i}"))).collect();
        p.fact(reach, vec![consts[start as usize]]).unwrap();
        // One linear rule per edge: reach(b) :- reach(a).
        for (a, b) in &edges {
            p.rule(
                Atom::new(reach, vec![Term::Const(consts[*b as usize])]),
                vec![Atom::new(reach, vec![Term::Const(consts[*a as usize])])],
            )
            .unwrap();
        }
        let g = GroundAtom::new(reach, vec![consts[goal as usize]]);
        let lin = parra_datalog::linear::LinearEvaluator::new(&p).query(&g);
        let gen = parra_datalog::eval::Evaluator::new(&p).query(&g);
        prop_assert_eq!(lin, gen);
        // And both agree with plain graph reachability.
        let mut seen = [false; 6];
        seen[start as usize] = true;
        loop {
            let mut changed = false;
            for (a, b) in &edges {
                if seen[*a as usize] && !seen[*b as usize] {
                    seen[*b as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        prop_assert_eq!(lin, seen[goal as usize]);
    }

    #[test]
    fn cache_schedules_verify(chain_len in 2u32..12) {
        use parra_datalog::ast::{Atom, Program, Term, GroundAtom};
        use parra_datalog::cache::{cache_schedule, verify_schedule};
        let mut p = Program::new();
        let next = p.predicate("next", 2);
        let reach = p.predicate("reach", 1);
        let consts: Vec<_> = (0..chain_len)
            .map(|i| p.constant(&format!("v{i}")))
            .collect();
        for w in consts.windows(2) {
            p.fact(next, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![consts[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(reach, vec![*consts.last().unwrap()]);
        let sched = cache_schedule(&p, &goal).expect("derivable");
        prop_assert!(verify_schedule(&p, &goal, &sched, sched.peak));
        // The peak stays constant in the chain length (locality).
        prop_assert!(sched.peak <= 3, "peak {}", sched.peak);
    }
}

// ---------------------------------------------------------------------
// Parser/pretty-printer round trip
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pretty_parse_roundtrip(seed in 0u64..100_000) {
        // Build a random small system programmatically, print it, parse
        // it back, and check the printed forms agree (fixed point after
        // one round).
        let mut s = seed;
        let mut rng = move |k: usize| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        };
        let mut b = SystemBuilder::new(3);
        let vars: Vec<VarId> = (0..2).map(|i| b.var(&format!("v{i}"))).collect();
        let mut p = b.program("env");
        let r = p.reg("r0");
        for _ in 0..rng(5) + 1 {
            match rng(5) {
                0 => {
                    p.load(r, vars[rng(2)]);
                }
                1 => {
                    p.store(vars[rng(2)], Expr::val(rng(3) as u32));
                }
                2 => {
                    p.assume(Expr::reg(r).eq(Expr::val(rng(3) as u32)));
                }
                3 => {
                    p.choice(
                        |p| {
                            p.skip();
                        },
                        |p| {
                            p.assert_false();
                        },
                    );
                }
                _ => {
                    p.star(|p| {
                        p.store(vars[0], Expr::val(1));
                    });
                }
            }
        }
        let env = p.finish();
        let sys = b.build(env, vec![]);
        let printed = parra_program::pretty::system_to_string(&sys);
        let reparsed = parra_program::parser::parse_system(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        let reprinted = parra_program::pretty::system_to_string(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }
}
