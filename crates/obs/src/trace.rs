//! Chrome-trace / Perfetto output.
//!
//! Renders a [`SpanStore`](crate::span::SpanStore) as the Trace Event
//! Format's JSON array: one `"ph":"B"` / `"ph":"E"` pair per finished
//! span, one record per line, so the file both loads in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) and greps
//! like JSONL. Counter (`"ph":"C"`) series can be appended for recorded
//! time series such as the Cache Datalog occupancy curve.
//!
//! Emission walks each thread's span forest recursively (begin, children
//! in start order, end), which guarantees two properties the validity
//! tests rely on: every `B` has a matching `E` on the same `tid`, and
//! timestamps are monotone (non-decreasing) in file order per `tid` —
//! a child opens after its parent and closes before it.

use crate::json::{write_escaped, ObjWriter};
use crate::span::{ArgValue, SpanRecord};

/// Renders spans (and optional counter series) as a Trace Event Format
/// JSON array, one event per line.
pub fn render_chrome_trace(spans: &[SpanRecord], series: &[CounterSeries]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&event);
    };
    push(process_name_event(), &mut out);

    // Index the finished spans as per-thread forests. Parents are always
    // on the same thread (span nesting is tracked thread-locally); a
    // span whose direct parent is unfinished hangs off its nearest
    // finished ancestor so sibling order stays time-sorted.
    let finished: Vec<usize> = (0..spans.len())
        .filter(|&i| spans[i].dur_us.is_some())
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for &i in &finished {
        let mut anc = spans[i].parent;
        while let Some(p) = anc {
            if spans[p].dur_us.is_some() {
                break;
            }
            anc = spans[p].parent;
        }
        match anc {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let start_key = |i: usize| (spans[i].tid, spans[i].start_us, i);
    roots.sort_by_key(|&i| start_key(i));
    for kids in &mut children {
        kids.sort_by_key(|&i| start_key(i));
    }
    // Iterative pre/post-order walk: B on entry, E on exit.
    enum Step {
        Begin(usize),
        End(usize),
    }
    let mut stack: Vec<Step> = roots.iter().rev().map(|&i| Step::Begin(i)).collect();
    while let Some(step) = stack.pop() {
        match step {
            Step::Begin(i) => {
                push(span_event(&spans[i], "B", spans[i].start_us), &mut out);
                stack.push(Step::End(i));
                for &c in children[i].iter().rev() {
                    stack.push(Step::Begin(c));
                }
            }
            Step::End(i) => {
                let end = spans[i].start_us + spans[i].dur_us.unwrap_or(0);
                push(span_event(&spans[i], "E", end), &mut out);
            }
        }
    }

    for s in series {
        // Spread the samples over the series' span so the curve is visible
        // next to the spans that produced it.
        let n = s.values.len().max(1) as u64;
        let step = (s.end_us.saturating_sub(s.start_us) / n).max(1);
        for (i, &v) in s.values.iter().enumerate() {
            let mut w = ObjWriter::new();
            w.str_field("name", &s.name);
            w.str_field("ph", "C");
            w.num_field("ts", s.start_us + i as u64 * step);
            w.num_field("pid", 1);
            w.raw_field("args", &format!("{{\"value\":{v}}}"));
            push(w.finish(), &mut out);
        }
    }
    out.push_str("\n]\n");
    out
}

fn span_event(span: &SpanRecord, ph: &str, ts: u64) -> String {
    let mut w = ObjWriter::new();
    w.str_field("name", &span.name);
    w.str_field("cat", "parra");
    w.str_field("ph", ph);
    w.num_field("ts", ts);
    w.num_field("pid", 1);
    w.num_field("tid", span.tid);
    if ph == "B" && !span.args.is_empty() {
        let mut args = String::from("{");
        for (i, (k, v)) in span.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            write_escaped(&mut args, k);
            args.push(':');
            match v {
                ArgValue::U64(n) => args.push_str(&n.to_string()),
                ArgValue::Str(s) => write_escaped(&mut args, s),
            }
        }
        args.push('}');
        w.raw_field("args", &args);
    }
    w.finish()
}

fn process_name_event() -> String {
    let mut w = ObjWriter::new();
    w.str_field("name", "process_name");
    w.str_field("ph", "M");
    w.num_field("pid", 1);
    w.raw_field("args", "{\"name\":\"parra\"}");
    w.finish()
}

/// A named value-over-time series rendered as Chrome counter events.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    /// The counter track name.
    pub name: String,
    /// Timestamp (µs since epoch) of the first sample.
    pub start_us: u64,
    /// Timestamp of the last sample.
    pub end_us: u64,
    /// The samples.
    pub values: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn trace_is_valid_json_array_of_records() {
        let spans = vec![
            SpanRecord {
                name: "verify".into(),
                start_us: 0,
                dur_us: Some(100),
                parent: None,
                tid: 1,
                args: vec![("states".into(), ArgValue::U64(4))],
            },
            SpanRecord {
                name: "open-span-skipped".into(),
                start_us: 5,
                dur_us: None,
                parent: Some(0),
                tid: 1,
                args: vec![],
            },
            SpanRecord {
                name: "child".into(),
                start_us: 10,
                dur_us: Some(20),
                parent: Some(0),
                tid: 1,
                args: vec![],
            },
        ];
        let series = vec![CounterSeries {
            name: "cache".into(),
            start_us: 10,
            end_us: 90,
            values: vec![1, 2, 1],
        }];
        let text = render_chrome_trace(&spans, &series);
        let v = parse(&text).expect("valid JSON");
        let events = v.as_arr().unwrap();
        // 1 metadata + 2 finished spans × (B + E) + 3 counter samples.
        assert_eq!(events.len(), 8);
        // Nesting: B verify, B child, E child, E verify.
        let phs: Vec<(&str, &str)> = events[1..5]
            .iter()
            .map(|e| {
                (
                    e.get("name").unwrap().as_str().unwrap(),
                    e.get("ph").unwrap().as_str().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            phs,
            [
                ("verify", "B"),
                ("child", "B"),
                ("child", "E"),
                ("verify", "E")
            ]
        );
        assert_eq!(events[1].get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(events[3].get("ts").unwrap().as_u64(), Some(30));
        assert_eq!(events[4].get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("states")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert_eq!(events[5].get("ph").unwrap().as_str(), Some("C"));
        // Every record sits on its own line (JSONL-greppable).
        for line in text.lines() {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed == "[" || trimmed == "]" || trimmed.is_empty() {
                continue;
            }
            assert!(parse(trimmed).is_ok(), "line not a record: {line}");
        }
    }

    /// Checks the two invariants `--trace-out` consumers rely on: every
    /// `B` is closed by an `E` on the same thread (stack discipline) and
    /// timestamps never decrease within a thread.
    pub(crate) fn assert_trace_validity(events: &[Value]) {
        use std::collections::BTreeMap;
        let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if !matches!(ph, "B" | "E") {
                continue;
            }
            let tid = e.get("tid").unwrap().as_u64().unwrap();
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            let name = e.get("name").unwrap().as_str().unwrap().to_string();
            let prev = last_ts.insert(tid, ts).unwrap_or(0);
            assert!(ts >= prev, "tid {tid}: ts went backwards ({prev} -> {ts})");
            let stack = stacks.entry(tid).or_default();
            match ph {
                "B" => stack.push(name),
                _ => assert_eq!(stack.pop().as_deref(), Some(name.as_str()), "unmatched E"),
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "tid {tid}: unclosed B events {stack:?}");
        }
    }

    #[test]
    fn b_e_pairs_match_and_timestamps_are_monotone_per_thread() {
        // A two-thread store with nesting, a zero-duration span, and an
        // unfinished span that must be dropped together with nothing else.
        let spans = vec![
            SpanRecord {
                name: "root".into(),
                start_us: 0,
                dur_us: Some(50),
                parent: None,
                tid: 1,
                args: vec![],
            },
            SpanRecord {
                name: "instant".into(),
                start_us: 7,
                dur_us: Some(0),
                parent: Some(0),
                tid: 1,
                args: vec![],
            },
            SpanRecord {
                name: "late-child".into(),
                start_us: 7,
                dur_us: Some(40),
                parent: Some(0),
                tid: 1,
                args: vec![],
            },
            SpanRecord {
                name: "worker".into(),
                start_us: 3,
                dur_us: Some(10),
                parent: None,
                tid: 2,
                args: vec![],
            },
            SpanRecord {
                name: "abandoned".into(),
                start_us: 4,
                dur_us: None,
                parent: None,
                tid: 2,
                args: vec![],
            },
        ];
        let text = render_chrome_trace(&spans, &[]);
        let v = parse(&text).expect("valid JSON");
        assert_trace_validity(v.as_arr().unwrap());
        assert!(!text.contains("abandoned"));
    }
}
