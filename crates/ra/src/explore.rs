//! Bounded explicit-state model checking of system instances.
//!
//! Timestamps in RA matter only up to (a) the per-variable order of
//! messages and (b) CAS adjacency. The explorer therefore works on a
//! *canonical* representation: each variable's messages form a sequence in
//! modification order, views hold positions into these sequences, and a CAS
//! *glues* its store to the loaded message so nothing can ever be inserted
//! between them (with natural-number timestamps, `ts` and `ts+1` are
//! consecutive forever). A store may insert its message at any non-glued
//! position above the storing thread's view — this captures the full
//! generality of timestamp choice that the monotone generator in
//! [`step`](crate::step) deliberately forgoes.
//!
//! Identical `env` threads are canonicalized by sorting their local states
//! (thread identities never appear in messages), which prunes the
//! factorial-size symmetric part of the state space.
//!
//! The search runs in **batched rounds over a sharded frontier**
//! (`parra-search`): each round, the frontier is expanded in parallel by
//! [`Explorer::with_threads`] workers — successor generation and
//! canonicalization, the clone-heavy hot path, run off-thread — and the
//! results are merged sequentially *in frontier order*, so state ids,
//! counts, truncation, and witnesses are identical to the sequential run
//! whatever the worker count. `threads == 1` never spawns a thread and
//! streams states one at a time (the legacy code path).
//!
//! The explorer is the paper's baseline: exact for a fixed instance and
//! bounded depth, and the reference point for validating the simplified
//! semantics (Theorem 3.4) and for the §4.3 thread-count experiments.

use crate::config::{Instance, ThreadId};
use parra_limits::{InterruptReason, ResourceBudget};
use parra_obs::{Phase, PhaseTimer, Recorder};
use parra_program::cfg::{Instr, Loc};
use parra_program::expr::RegVal;
use parra_program::ident::VarId;
use parra_program::pretty::{instr_to_string, Names};
use parra_program::value::Val;
use parra_search::{ordered_map, SearchGraph, Threads};

/// Search limits.
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum transitions along any path (depth bound).
    pub max_depth: usize,
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_depth: 64,
            max_states: 200_000,
        }
    }
}

/// What the explorer searches for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// An enabled `assert false` instruction.
    AssertViolation,
    /// A generated message `(x, d, _)` — the Message Generation problem of
    /// Section 4.1.
    MessageGenerated(VarId, Val),
}

/// The verdict of a bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// The target is reachable; a witness is attached to the report.
    Unsafe,
    /// The full (finite) state space was exhausted without reaching the
    /// target: the instance is definitively safe.
    SafeExhausted,
    /// The bounds cut the search; no violation within them.
    SafeWithinBounds,
    /// The resource governor stopped the search; partial statistics only.
    /// Never evidence of safety.
    Interrupted(InterruptReason),
}

/// One step of a witness: the acting thread and the instruction text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// The acting thread.
    pub thread: ThreadId,
    /// Whether it is an `env` thread or which `dis` thread.
    pub description: String,
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The verdict.
    pub outcome: ExploreOutcome,
    /// Number of distinct canonical states visited.
    pub states: usize,
    /// Number of transitions taken (edges of the search graph).
    pub transitions: usize,
    /// For [`ExploreOutcome::Unsafe`], a shortest witness run (threads are
    /// canonical representatives of their symmetry class).
    pub witness: Option<Vec<WitnessStep>>,
}

/// A canonical message: value, view (positions per variable), glue mark.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct CMsg {
    val: Val,
    view: Vec<u32>,
    /// Glued to its predecessor in modification order (CAS adjacency).
    glued: bool,
}

/// A canonical thread state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct CThread {
    loc: Loc,
    regs: RegVal,
    view: Vec<u32>,
}

/// A canonical global state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CState {
    /// `mem[x]` is variable `x`'s message sequence in modification order;
    /// index 0 is the initial message.
    mem: Vec<Vec<CMsg>>,
    threads: Vec<CThread>,
}

impl CState {
    fn initial(instance: &Instance) -> CState {
        let n_vars = instance.n_vars();
        let init_msg = CMsg {
            val: Val::INIT,
            view: vec![0; n_vars],
            glued: false,
        };
        CState {
            mem: vec![vec![init_msg]; n_vars],
            threads: instance
                .threads()
                .map(|tid| {
                    let p = instance.program(tid);
                    CThread {
                        loc: p.cfa().entry(),
                        regs: RegVal::new(p.n_regs() as usize),
                        view: vec![0; n_vars],
                    }
                })
                .collect(),
        }
    }

    /// Sorts the `env` block (identical programs, interchangeable
    /// identities) into a canonical order.
    fn canonicalize(&mut self, n_env: usize) {
        self.threads[..n_env].sort();
    }

    /// Shifts every stored position on variable `x` that is `>= at` up by
    /// one, making room for an insertion at `at`.
    fn shift_positions(&mut self, x: VarId, at: u32) {
        let xi = x.index();
        for var_msgs in &mut self.mem {
            for m in var_msgs.iter_mut() {
                if m.view[xi] >= at {
                    m.view[xi] += 1;
                }
            }
        }
        for th in &mut self.threads {
            if th.view[xi] >= at {
                th.view[xi] += 1;
            }
        }
    }

    fn has_message(&self, x: VarId, d: Val) -> bool {
        self.mem[x.index()].iter().any(|m| m.val == d)
    }
}

fn join_views(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().zip(b).map(|(&p, &q)| p.max(q)).collect()
}

/// A compact parent-edge label: the acting thread and the index of the
/// taken edge in its program's CFA. Formatted into a [`WitnessStep`] only
/// during unwinding — never on the hot path.
type StepLabel = (ThreadId, u32);

/// One output item of expanding a single state (produced by workers,
/// consumed by the sequential merge, in generation order).
enum ExpandEvent {
    /// An enabled `assert false` edge (only emitted when the target is
    /// [`Target::AssertViolation`]); the sequential search stops here.
    AssertHit(ThreadId, u32),
    /// A canonicalized successor reached by `thread` taking `edge`.
    Succ {
        thread: ThreadId,
        edge: u32,
        state: CState,
    },
}

/// The bounded model checker.
#[derive(Debug, Clone)]
pub struct Explorer {
    instance: Instance,
    limits: ExploreLimits,
    rec: Recorder,
    threads: Threads,
    gov: ResourceBudget,
}

impl Explorer {
    /// Creates an explorer over an instance (sequential; see
    /// [`Explorer::with_threads`]).
    pub fn new(instance: Instance, limits: ExploreLimits) -> Explorer {
        Explorer {
            instance,
            limits,
            rec: Recorder::disabled(),
            threads: Threads::exact(1),
            gov: ResourceBudget::unlimited(),
        }
    }

    /// The same explorer reporting metrics/spans through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Explorer {
        self.rec = rec;
        self
    }

    /// The same explorer expanding each frontier with `n` worker threads
    /// (clamped to at least 1). Results are bit-identical for every `n`;
    /// `1` is the sequential legacy path.
    pub fn with_threads(mut self, n: usize) -> Explorer {
        self.threads = Threads::exact(n);
        self
    }

    /// The same explorer governed by `gov`, checked once per BFS round. A
    /// run that completes under the budget is identical to an ungoverned
    /// run; exhaustion yields [`ExploreOutcome::Interrupted`] with the
    /// partial state/transition counts.
    pub fn with_governor(mut self, gov: ResourceBudget) -> Explorer {
        self.gov = gov;
        self
    }

    /// Runs the search for `target`.
    pub fn run(&self, target: Target) -> ExploreReport {
        let span = self.rec.span("explore.run");
        let phases = PhaseTimer::new(&self.rec);
        let _search = phases.start_debug(Phase::Search);
        let report = self.run_inner(target);
        span.arg_u64("states", report.states as u64);
        span.arg_u64("transitions", report.transitions as u64);
        span.arg_str("outcome", &format!("{:?}", report.outcome));
        report
    }

    fn run_inner(&self, target: Target) -> ExploreReport {
        let instance = &self.instance;
        let n_env = instance.n_env();
        let n_workers = self.threads.get();

        let mut init = CState::initial(instance);
        init.canonicalize(n_env);

        // Immediate check on the initial state.
        if let Target::MessageGenerated(x, d) = target {
            if init.has_message(x, d) {
                return ExploreReport {
                    outcome: ExploreOutcome::Unsafe,
                    states: 1,
                    transitions: 0,
                    witness: Some(Vec::new()),
                };
            }
        }

        let c_states = self.rec.counter("states");
        let c_transitions = self.rec.counter("transitions");
        let c_dedup = self.rec.counter("dedup_hits");
        let c_rounds = self.rec.counter("rounds");
        let g_queue = self.rec.gauge("queue_len");
        let g_frontier = self.rec.gauge("frontier_size");
        let h_depth = self.rec.histogram("state_depth");
        let worker_expanded: Vec<_> = (0..n_workers)
            .map(|w| self.rec.counter(&format!("worker{w}_expanded")))
            .collect();

        // The search graph assigns ids in merge order — identical for
        // every worker count; `depths[id]` tracks the BFS level.
        let mut graph: SearchGraph<CState, StepLabel> = SearchGraph::new(n_workers);
        let mut depths: Vec<u32> = Vec::new();
        graph.insert(init, None);
        depths.push(0);
        c_states.incr();
        h_depth.record(0);

        let mut frontier: Vec<u32> = vec![0];
        let mut transitions = 0usize;
        let mut truncated = false;
        let mut round = 0u64;

        while !frontier.is_empty() {
            if let Err(reason) = self.gov.check() {
                return ExploreReport {
                    outcome: ExploreOutcome::Interrupted(reason),
                    states: graph.len(),
                    transitions,
                    witness: None,
                };
            }
            self.rec.heartbeat(|| {
                format!(
                    "explore: {} states, {transitions} transitions, frontier {} \
                     ({n_workers} workers)",
                    graph.len(),
                    frontier.len()
                )
            });
            g_frontier.set(frontier.len() as u64);
            let round_span = self.rec.span_debug("explore.round");
            round_span.arg_u64("round", round);
            round_span.arg_u64("frontier", frontier.len() as u64);
            round += 1;
            c_rounds.incr();

            // The depth bound cuts states off before expansion.
            let expandable: Vec<u32> = frontier
                .iter()
                .copied()
                .filter(|&si| {
                    if depths[si as usize] as usize >= self.limits.max_depth {
                        truncated = true;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            frontier.clear();

            // Expansion phase: successor generation + canonicalization
            // (the clone-heavy part) fans out across the workers in
            // frontier-order chunks; the graph is frozen (shared borrow)
            // while a chunk runs, so the buffered successors stay
            // O(chunk × branching) however large the frontier is.
            // Sequential mode streams one state at a time instead.
            for chunk in expandable.chunks(parra_search::round_chunk(n_workers)) {
                let mut expanded: Vec<Vec<ExpandEvent>> = if n_workers > 1 && chunk.len() > 1 {
                    let states = graph.states();
                    ordered_map(n_workers, chunk, |w, _, &si| {
                        worker_expanded[w].incr();
                        self.expand_state(&states[si as usize], target)
                    })
                } else {
                    Vec::new()
                };

                // Merge phase: sequential, in frontier order — id assignment,
                // dedup, limits, and target checks happen here and only here.
                for (pos, &si) in chunk.iter().enumerate() {
                    let events = if expanded.is_empty() {
                        worker_expanded[0].incr();
                        self.expand_state(graph.state(si), target)
                    } else {
                        std::mem::take(&mut expanded[pos])
                    };
                    for event in events {
                        match event {
                            ExpandEvent::AssertHit(tid, edge) => {
                                let mut w = self.witness(&graph, si);
                                w.push(self.describe(tid, edge));
                                return ExploreReport {
                                    outcome: ExploreOutcome::Unsafe,
                                    states: graph.len(),
                                    transitions,
                                    witness: Some(w),
                                };
                            }
                            ExpandEvent::Succ {
                                thread,
                                edge,
                                state,
                            } => {
                                transitions += 1;
                                c_transitions.incr();
                                if graph.contains(&state) {
                                    c_dedup.incr();
                                    continue;
                                }
                                // Goal message check on the new state —
                                // evaluated BEFORE the capacity drop, so a
                                // full state table can never mask an Unsafe
                                // verdict as SafeWithinBounds.
                                let reached = match target {
                                    Target::MessageGenerated(x, d) => state.has_message(x, d),
                                    Target::AssertViolation => false,
                                };
                                if !reached && graph.len() >= self.limits.max_states {
                                    truncated = true;
                                    continue;
                                }
                                let ni = graph.insert(state, Some((si, (thread, edge))));
                                depths.push(depths[si as usize] + 1);
                                c_states.incr();
                                h_depth.record(depths[ni as usize] as u64);
                                g_queue.record_peak(frontier.len() as u64 + 1);
                                if reached {
                                    return ExploreReport {
                                        outcome: ExploreOutcome::Unsafe,
                                        states: graph.len(),
                                        transitions,
                                        witness: Some(self.witness(&graph, ni)),
                                    };
                                }
                                frontier.push(ni);
                            }
                        }
                    }
                }
            }
            // Flight-recorder event at the end of the sequential merge:
            // the BFS levels replay identically at every worker count, so
            // every field is deterministic; shard layout and headroom are
            // environment-dependent and stay volatile.
            if self.rec.is_enabled() {
                let mut vol = self.gov.headroom().volatile_fields();
                vol.push(("shard_imbalance_permille", graph.shard_imbalance_permille()));
                self.rec.event_with(
                    "round",
                    &[
                        ("round", (round - 1).into()),
                        ("frontier", frontier.len().into()),
                        ("states", graph.len().into()),
                        ("transitions", transitions.into()),
                    ],
                    &vol,
                );
            }
        }

        ExploreReport {
            outcome: if truncated {
                ExploreOutcome::SafeWithinBounds
            } else {
                ExploreOutcome::SafeExhausted
            },
            states: graph.len(),
            transitions,
            witness: None,
        }
    }

    /// All expansion events of one state, in the deterministic order the
    /// sequential search would produce them (thread id, then edge order,
    /// then successor order). Pure with respect to the search state — safe
    /// to run on any worker.
    fn expand_state(&self, state: &CState, target: Target) -> Vec<ExpandEvent> {
        let instance = &self.instance;
        let n_env = instance.n_env();
        let dom = instance.system().dom;
        let mut events = Vec::new();
        for tid in instance.threads() {
            let cfa = instance.program(tid).cfa();
            let th = &state.threads[tid.0];
            for (ei, edge) in cfa.outgoing_indexed(th.loc) {
                // Target check: an enabled assert is a violation; the
                // merge stops at this event, so nothing after it matters.
                if matches!(edge.instr, Instr::AssertFalse) && target == Target::AssertViolation {
                    events.push(ExpandEvent::AssertHit(tid, ei));
                    return events;
                }
                for mut next in successor_states(state, tid, &edge.instr, dom) {
                    next.threads[tid.0].loc = edge.to;
                    next.canonicalize(n_env);
                    events.push(ExpandEvent::Succ {
                        thread: tid,
                        edge: ei,
                        state: next,
                    });
                }
            }
        }
        events
    }

    /// Renders the witness path to `at` — the parents store only compact
    /// `(thread, edge)` labels, so the description strings are formatted
    /// here, once per witness, instead of once per stored state.
    fn witness(&self, graph: &SearchGraph<CState, StepLabel>, at: u32) -> Vec<WitnessStep> {
        graph
            .unwind(at)
            .into_iter()
            .map(|(tid, edge)| self.describe(tid, edge))
            .collect()
    }

    fn describe(&self, tid: ThreadId, edge: u32) -> WitnessStep {
        let program = self.instance.program(tid);
        let names = Names::for_program(&self.instance.system().vars, program);
        let instr = &program.cfa().edges()[edge as usize].instr;
        WitnessStep {
            thread: tid,
            description: format!(
                "{} ({}): {}",
                tid,
                self.instance.kind(tid),
                instr_to_string(instr, names)
            ),
        }
    }
}

/// All successor states of `state` when thread `tid` executes `instr`.
fn successor_states(
    state: &CState,
    tid: ThreadId,
    instr: &Instr,
    dom: parra_program::value::Dom,
) -> Vec<CState> {
    let th = &state.threads[tid.0];
    let mut out = Vec::new();
    match instr {
        Instr::Skip | Instr::AssertFalse => {
            out.push(state.clone());
        }
        Instr::Assume(e) => {
            if e.eval(&th.regs, dom).as_bool() {
                out.push(state.clone());
            }
        }
        Instr::Assign(r, e) => {
            let mut next = state.clone();
            let v = e.eval(&th.regs, dom);
            next.threads[tid.0].regs.set(*r, v);
            out.push(next);
        }
        Instr::Load(r, x) => {
            let xi = x.index();
            let from = th.view[xi] as usize;
            for (pos, msg) in state.mem[xi].iter().enumerate().skip(from) {
                let mut next = state.clone();
                {
                    let t = &mut next.threads[tid.0];
                    t.regs.set(*r, msg.val);
                    t.view = join_views(&t.view, &msg.view);
                    // The message's own coordinate is its position.
                    t.view[xi] = t.view[xi].max(pos as u32);
                }
                out.push(next);
            }
        }
        Instr::Store(x, e) => {
            let xi = x.index();
            let val = e.eval(&th.regs, dom);
            let len = state.mem[xi].len() as u32;
            for ins in (th.view[xi] + 1)..=len {
                // Cannot split a glued pair: inserting at `ins` places the
                // new message between ins-1 and ins.
                if (ins as usize) < state.mem[xi].len() && state.mem[xi][ins as usize].glued {
                    continue;
                }
                let mut next = state.clone();
                next.shift_positions(*x, ins);
                let mut view = next.threads[tid.0].view.clone();
                view[xi] = ins;
                let msg = CMsg {
                    val,
                    view: view.clone(),
                    glued: false,
                };
                next.mem[xi].insert(ins as usize, msg);
                next.threads[tid.0].view = view;
                out.push(next);
            }
        }
        Instr::Cas(x, e1, e2) => {
            let xi = x.index();
            let want = e1.eval(&th.regs, dom);
            let new_val = e2.eval(&th.regs, dom);
            let from = th.view[xi] as usize;
            let len = state.mem[xi].len();
            for pos in from..len {
                if state.mem[xi][pos].val != want {
                    continue;
                }
                let ins = pos as u32 + 1;
                // The slot after `pos` must not already be glued to it.
                if (ins as usize) < len && state.mem[xi][ins as usize].glued {
                    continue;
                }
                let loaded_view = state.mem[xi][pos].view.clone();
                let mut next = state.clone();
                next.shift_positions(*x, ins);
                let mut view = join_views(
                    &next.threads[tid.0].view,
                    &loaded_view_shifted(&loaded_view, xi, ins),
                );
                view[xi] = ins;
                let msg = CMsg {
                    val: new_val,
                    view: view.clone(),
                    glued: true,
                };
                next.mem[xi].insert(ins as usize, msg);
                next.threads[tid.0].view = view;
                out.push(next);
            }
        }
    }
    out
}

/// The loaded message's view after the shift for the insertion at `ins` on
/// variable index `xi` (its own coordinate is `ins - 1 < ins`, so only
/// coordinates `>= ins` move — but the loaded message's coordinate on `xi`
/// is `ins - 1`, unaffected; other variables are not shifted at all).
fn loaded_view_shifted(view: &[u32], xi: usize, ins: u32) -> Vec<u32> {
    let mut v = view.to_vec();
    if v[xi] >= ins {
        v[xi] += 1;
    }
    v
}

impl Explorer {
    /// The instance under exploration.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The limits in effect.
    pub fn limits(&self) -> ExploreLimits {
        self.limits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;
    use parra_program::expr::Expr;
    use parra_program::system::ParamSystem;

    fn limits() -> ExploreLimits {
        ExploreLimits {
            max_depth: 32,
            max_states: 100_000,
        }
    }

    /// env: r <- y; assume r == 1; x := 1  ‖  dis: y := 1; s <- x;
    /// assume s == 1; assert false
    fn handshake() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.store(y, 1).load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn handshake_unsafe_with_one_env_thread() {
        let report =
            Explorer::new(Instance::new(handshake(), 1), limits()).run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::Unsafe);
        let w = report.witness.unwrap();
        assert!(!w.is_empty());
        assert!(w.last().unwrap().description.contains("assert false"));
    }

    #[test]
    fn handshake_safe_with_zero_env_threads() {
        let report =
            Explorer::new(Instance::new(handshake(), 0), limits()).run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::SafeExhausted);
    }

    #[test]
    fn message_generation_target() {
        let sys = handshake();
        let x = parra_program::ident::VarId(0);
        let report =
            Explorer::new(Instance::new(sys, 1), limits()).run(Target::MessageGenerated(x, Val(1)));
        assert_eq!(report.outcome, ExploreOutcome::Unsafe);
    }

    /// Never-read-overwritten (the paper's slogan): y:=1; x:=1 in one
    /// thread; a reader that sees x=1 must not read y=0.
    #[test]
    fn ra_coherence_no_overwritten_reads() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("writer");
        env.store(y, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("reader");
        let rx = d.reg("rx");
        let ry = d.reg("ry");
        d.load(rx, x)
            .assume_eq(rx, 1)
            .load(ry, y)
            .assume_eq(ry, 0)
            .assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let report = Explorer::new(Instance::new(sys, 1), limits()).run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::SafeExhausted);
    }

    /// Reading x=1 then y=0 is fine when the writes are unordered (two
    /// different env threads).
    #[test]
    fn unordered_writes_allow_stale_read() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("writer");
        let which = env.reg("which");
        env.load(which, x); // dummy read to diversify; then choose a write
        let mut envb = b.program("writer");
        let _ = env;
        // Simpler: env writes x only; dis writes y after reading x.
        envb.store(x, 1);
        let envb = envb.finish();
        let mut d = b.program("reader");
        let rx = d.reg("rx");
        let ry = d.reg("ry");
        d.load(rx, x)
            .assume_eq(rx, 1)
            .load(ry, y)
            .assume_eq(ry, 0)
            .assert_false();
        let d = d.finish();
        let sys = b.build(envb, vec![d]);
        let report = Explorer::new(Instance::new(sys, 1), limits()).run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::Unsafe);
    }

    /// Two dis threads CAS a lock from 0 to 1: only one can win.
    #[test]
    fn cas_mutual_exclusion() {
        let mut b = SystemBuilder::new(3);
        let lock = b.var("lock");
        let crit = b.var("crit");
        let env = {
            let mut p = b.program("noop");
            p.skip();
            p.finish()
        };
        let mk_locker = |b: &SystemBuilder, name: &str| {
            let mut p = b.program(name);
            let r = p.reg("r");
            p.cas(lock, 0, 1);
            p.load(r, crit);
            p.assume_eq(r, 1);
            p.assert_false();
            p.finish()
        };
        // dis1 takes the lock and sets crit := 1... but the assertion needs
        // BOTH lockers to pass the CAS, which adjacency forbids. Model:
        // dis1: cas; crit := 1.  dis2: cas; r <- crit; assume r == 1; assert.
        let mut d1 = b.program("locker1");
        d1.cas(lock, 0, 1).store(crit, 1);
        let d1 = d1.finish();
        let d2 = mk_locker(&b, "locker2");
        let sys = b.build(env, vec![d1, d2]);
        let report = Explorer::new(Instance::new(sys, 0), limits()).run(Target::AssertViolation);
        // Both CAS from 0: only one succeeds (timestamp adjacency on the
        // initial message), so dis2 can never both win the CAS and see
        // crit = 1 — dis1 must have won to set crit.
        assert_eq!(report.outcome, ExploreOutcome::SafeExhausted);
    }

    /// CAS glue: a store cannot be inserted between a CAS pair.
    #[test]
    fn cas_adjacency_blocks_insertion() {
        // dis1: cas(x,0,1). dis2: x := 2 (must not land between).
        // reader: sees 0 then 1 in modification order with nothing between:
        // if it reads 2 after reading the CAS'd 1... order alone can't be
        // asserted; instead check state count: with the glue, the store
        // x:=2 has exactly 2 insertion slots (before the pair or after),
        // not 3.
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let env = {
            let mut p = b.program("noop");
            p.skip();
            p.finish()
        };
        let mut d1 = b.program("casser");
        d1.cas(x, 0, 1);
        let d1 = d1.finish();
        let mut d2 = b.program("storer");
        d2.store(x, 2);
        let d2 = d2.finish();
        let sys = b.build(env, vec![d1, d2]);

        // Run CAS first, then count store placements by exploring.
        let report = Explorer::new(Instance::new(sys, 0), limits()).run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::SafeExhausted);
        // Exactly 4 canonical states: init; after-CAS; after-store (only
        // the slot above the initial message, i.e. one placement from
        // init); and the merged final state — the store cannot land inside
        // the glued pair, and both interleavings converge to the same
        // memory [0, 1(glued), 2].
        assert_eq!(report.states, 4);
    }

    #[test]
    fn depth_bound_reported() {
        // env: loop { x := 1; } — infinite runs, must truncate.
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("looper");
        env.star(|p| {
            p.store(x, 1);
        });
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let report = Explorer::new(
            Instance::new(sys, 1),
            ExploreLimits {
                max_depth: 4,
                max_states: 10_000,
            },
        )
        .run(Target::AssertViolation);
        assert_eq!(report.outcome, ExploreOutcome::SafeWithinBounds);
    }

    /// Regression (soundness of reporting): a successor that exhibits the
    /// target and lands exactly at the `max_states` boundary must still
    /// yield `Unsafe` — the pre-fix code `continue`d on the capacity check
    /// before evaluating the target, silently dropping the bug-exhibiting
    /// state and reporting `SafeWithinBounds`.
    #[test]
    fn target_at_state_capacity_boundary_is_unsafe() {
        let sys = handshake();
        let x = parra_program::ident::VarId(0);
        // Unbounded run: the search stops at the goal state, so it is the
        // last insertion — discovered when exactly `states - 1` states
        // were already stored.
        let full = Explorer::new(Instance::new(sys.clone(), 1), limits())
            .run(Target::MessageGenerated(x, Val(1)));
        assert_eq!(full.outcome, ExploreOutcome::Unsafe);
        assert!(full.states >= 2);
        let tight = ExploreLimits {
            max_depth: 32,
            max_states: full.states - 1,
        };
        for n_threads in [1, 4] {
            let report = Explorer::new(Instance::new(sys.clone(), 1), tight)
                .with_threads(n_threads)
                .run(Target::MessageGenerated(x, Val(1)));
            assert_eq!(
                report.outcome,
                ExploreOutcome::Unsafe,
                "max_states boundary masked the violation ({n_threads} threads)"
            );
            assert!(report.witness.is_some());
            assert_eq!(report.states, full.states);
        }
    }

    /// The deterministic-parallelism invariant: every worker count yields
    /// the same outcome, state count, transition count, and witness.
    #[test]
    fn worker_count_does_not_change_reports() {
        let sys = handshake();
        let x = parra_program::ident::VarId(0);
        for target in [
            Target::AssertViolation,
            Target::MessageGenerated(x, Val(1)),
            Target::MessageGenerated(x, Val(7)), // unreachable: exhausts
        ] {
            let base = Explorer::new(Instance::new(sys.clone(), 1), limits()).run(target);
            for n in [2, 3, 8] {
                let par = Explorer::new(Instance::new(sys.clone(), 1), limits())
                    .with_threads(n)
                    .run(target);
                assert_eq!(par.outcome, base.outcome, "{target:?} with {n} threads");
                assert_eq!(par.states, base.states, "{target:?} with {n} threads");
                assert_eq!(
                    par.transitions, base.transitions,
                    "{target:?} with {n} threads"
                );
                assert_eq!(par.witness, base.witness, "{target:?} with {n} threads");
            }
        }
    }

    /// Depth truncation is reported identically under parallel expansion.
    #[test]
    fn depth_bound_parallel_matches_sequential() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("looper");
        env.star(|p| {
            p.store(x, 1);
        });
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let lim = ExploreLimits {
            max_depth: 4,
            max_states: 10_000,
        };
        let seq = Explorer::new(Instance::new(sys.clone(), 2), lim).run(Target::AssertViolation);
        let par = Explorer::new(Instance::new(sys, 2), lim)
            .with_threads(4)
            .run(Target::AssertViolation);
        assert_eq!(seq.outcome, ExploreOutcome::SafeWithinBounds);
        assert_eq!(par.outcome, seq.outcome);
        assert_eq!(par.states, seq.states);
        assert_eq!(par.transitions, seq.transitions);
    }

    /// An exhausted budget interrupts with partial statistics (the
    /// initial state is already counted), never a Safe verdict.
    #[test]
    fn exhausted_deadline_interrupts() {
        let report = Explorer::new(Instance::new(handshake(), 1), limits())
            .with_governor(ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO))
            .run(Target::AssertViolation);
        assert_eq!(
            report.outcome,
            ExploreOutcome::Interrupted(InterruptReason::Deadline)
        );
        assert_eq!(report.states, 1);
        assert!(report.witness.is_none());
    }

    /// A generous budget changes nothing: the governed report equals the
    /// ungoverned one at every worker count.
    #[test]
    fn generous_budget_matches_unlimited_run() {
        let base =
            Explorer::new(Instance::new(handshake(), 1), limits()).run(Target::AssertViolation);
        for n in [1, 4] {
            let governed = Explorer::new(Instance::new(handshake(), 1), limits())
                .with_threads(n)
                .with_governor(
                    ResourceBudget::unlimited()
                        .with_deadline(std::time::Duration::from_secs(3600))
                        .with_memory_limit(usize::MAX),
                )
                .run(Target::AssertViolation);
            assert_eq!(governed.outcome, base.outcome, "threads {n}");
            assert_eq!(governed.states, base.states, "threads {n}");
            assert_eq!(governed.transitions, base.transitions, "threads {n}");
            assert_eq!(governed.witness, base.witness, "threads {n}");
        }
    }

    #[test]
    fn symmetry_reduction_collapses_env_permutations() {
        // Two identical env threads: exploring one store each must not
        // double-count permuted states.
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("w");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let r2 =
            Explorer::new(Instance::new(sys.clone(), 2), limits()).run(Target::AssertViolation);
        assert_eq!(r2.outcome, ExploreOutcome::SafeExhausted);
        // With symmetry, thread identity of the first storer is quotiented:
        // states: init; one-stored (x2 placements? no: both placements
        // exist but are symmetric per thread) ... sanity: strictly fewer
        // states than the unreduced bound 1 + 2 + 4.
        assert!(r2.states <= 7);
        let _ = Expr::val(0);
    }
}
