#![warn(missing_docs)]

//! # parra-litmus — the paper's benchmark programs
//!
//! The introduction of *"Parameterized Verification under Release Acquire
//! is PSPACE-complete"* classifies concurrency benchmarks from three
//! sources into its system classes:
//!
//! * Lahav–Margalit (PLDI 2019) robustness benchmarks: `peterson-ra`,
//!   `lamport-2-ra`, `lamport-2-3-ra`, `rcu`;
//! * Norris's model-checker benchmarks: `dekker-fences`, `barrier`,
//!   `chase-lev-deque`, `peterson-ra-bratosz`;
//! * the Phoenix-2.0 data-parallel suite: `histogram`, `kmeans`,
//!   `linear-regression`, `matrix-multiply`, `pca`, `string-match`,
//!   `word-count`, `sort-pthread`.
//!
//! The original C sources are irrelevant to the classification — only the
//! shared-memory synchronization skeleton matters (loops, CAS usage), which
//! this crate reproduces as `Com` programs, together with the
//! producer/consumer example of the paper's Figure 1 and a CAS spinlock as
//! a correct-under-RA contrast. Wait loops are remodelled as
//! `load; assume` exactly as the paper prescribes; fixed-bound loops are
//! unrolled; mutual-exclusion violations are detected with single-entry
//! critical-section flags (no resets, so a flag read of 1 means the other
//! role entered — sound for the acyclic single-entry models used here).
//!
//! Substitution note (documented in `DESIGN.md`): `dekker-fences` uses SC
//! fences in the original; `Com` has no fence instruction, so the skeleton
//! is modelled fence-free, and the expected verdict reflects that RA alone
//! does not provide mutual exclusion for it.

pub mod classic;
pub mod mutex;
pub mod phoenix;
pub mod sync;

use parra_program::system::ParamSystem;

/// The expected verdict of a benchmark under RA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The assertion is unreachable in every instance.
    Safe,
    /// Some instance reaches the assertion.
    Unsafe,
}

/// A named benchmark with provenance, class note, and expected verdict.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Machine-friendly name.
    pub name: &'static str,
    /// Where the paper took it from.
    pub source: &'static str,
    /// The system class the paper assigns (after the documented
    /// remodelling).
    pub class_note: &'static str,
    /// Expected verdict.
    pub expected: Expected,
    /// The system.
    pub system: ParamSystem,
}

/// The full suite, in the order the paper lists the benchmarks.
pub fn all() -> Vec<Benchmark> {
    vec![
        sync::producer_consumer_benchmark(3),
        mutex::peterson_ra(),
        mutex::peterson_ra_bratosz(),
        mutex::dekker(),
        mutex::lamport_2_ra(),
        mutex::lamport_2_3_ra(),
        mutex::spinlock_cas(),
        sync::rcu(),
        sync::barrier(),
        sync::chase_lev_deque(),
        phoenix::histogram(),
        phoenix::kmeans(),
        phoenix::linear_regression(),
        phoenix::matrix_multiply(),
        phoenix::pca(),
        phoenix::string_match(),
        phoenix::word_count(),
        phoenix::sort_pthread(),
        classic::message_passing(),
        classic::store_buffering(),
        classic::load_buffering(),
        classic::iriw(),
        classic::write_read_causality(),
        classic::coherence_rr(),
        classic::coherence_rr_parameterized(),
        classic::two_plus_two_w(),
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    #[test]
    fn suite_is_populated_and_named_uniquely() {
        let suite = all();
        assert!(suite.len() >= 25);
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn all_benchmarks_are_in_the_decidable_class() {
        for b in all() {
            let class = SystemClass::of(&b.system);
            assert!(
                class.is_decidable_fragment(),
                "{} is outside env(nocas) ‖ dis(acyc)*: {class}",
                b.name
            );
        }
    }

    #[test]
    fn by_name_finds_benchmarks() {
        assert!(by_name("peterson-ra").is_some());
        assert!(by_name("rcu").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_benchmarks_have_assertions() {
        for b in all() {
            let has = b.system.env.cfa().has_assert()
                || b.system.dis.iter().any(|d| d.cfa().has_assert());
            assert!(has, "{} has no assertion", b.name);
        }
    }
}
