//! Serve robustness: overload must degrade to structured rejections
//! without touching admitted work, and injected faults (an engine panic,
//! an already-spent deadline) must degrade to per-request error/unknown
//! responses while the daemon keeps serving.

use parra::obs::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn sock_path(name: &str) -> String {
    format!("{}/{name}.sock", env!("CARGO_TARGET_TMPDIR"))
}

/// A spawned daemon that is force-killed on drop, so a failing assertion
/// in a test never leaks a live daemon (which would also hold the test
/// harness's output pipes open).
struct Daemon {
    child: Option<Child>,
    sock: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_daemon(sock: &str, args: &[&str], env: &[(&str, &str)]) -> Daemon {
    let _ = std::fs::remove_file(sock);
    let mut cmd = Command::new(BIN);
    cmd.args(["serve", "--socket", sock])
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("spawn parra serve");
    let daemon = Daemon {
        child: Some(child),
        sock: sock.to_string(),
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if UnixStream::connect(sock).is_ok() {
            return daemon;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not open {sock} within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown_daemon(mut daemon: Daemon) {
    let stream = UnixStream::connect(&daemon.sock).expect("connect for shutdown");
    let mut w = stream.try_clone().unwrap();
    writeln!(w, r#"{{"proto":1,"type":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).unwrap();
    let status = daemon
        .child
        .take()
        .expect("daemon still running")
        .wait()
        .expect("daemon exits");
    assert!(status.success(), "daemon exited {status}");
}

/// One request over a fresh connection.
fn request(sock: &str, line: &str) -> Value {
    let stream = UnixStream::connect(sock).expect("client connects");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("receive");
    json::parse(resp.trim()).expect("response parses")
}

fn field<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("")
}

/// Fill the admission queue past capacity: the burst gets structured
/// `overloaded` rejections, the admitted (stalled) request still returns
/// its correct verdict, and the daemon serves normally afterwards.
#[test]
fn overload_rejects_the_burst_without_touching_admitted_work() {
    let sock = sock_path("serve_overload");
    // `--max-queue 1` plus a stall injection matched against the request
    // *name*: the admitted request holds the only permit for ~400ms,
    // which is the window the burst lands in.
    let daemon = spawn_daemon(
        &sock,
        &["--max-queue", "1", "--threads", "1"],
        &[("PARRA_SERVE_INJECT_STALL", "hold-the-slot")],
    );

    // The stalled request runs on its own connection thread.
    let stalled = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            request(
                &sock,
                r#"{"proto":1,"id":"slow","type":"verify","litmus":"mp","name":"hold-the-slot"}"#,
            )
        })
    };
    // Give it time to be admitted, then burst while it holds the permit.
    std::thread::sleep(Duration::from_millis(120));
    for i in 0..3 {
        let resp = request(
            &sock,
            &format!(r#"{{"proto":1,"id":"burst-{i}","type":"verify","litmus":"sb"}}"#),
        );
        assert_eq!(
            field(&resp, "code"),
            "overloaded",
            "burst request {i} was not rejected: {resp:?}"
        );
        assert_eq!(field(&resp, "type"), "error");
    }

    // The admitted request is unaffected by the rejected burst.
    let slow = stalled.join().expect("stalled client");
    assert_eq!(field(&slow, "verdict"), "SAFE", "stalled verdict: {slow:?}");

    // And once the permit is back, the daemon serves normally.
    let after = request(
        &sock,
        r#"{"proto":1,"id":"after","type":"verify","litmus":"sb"}"#,
    );
    assert_eq!(
        field(&after, "verdict"),
        "UNSAFE",
        "post-overload: {after:?}"
    );

    let status = request(&sock, r#"{"proto":1,"id":"s","type":"status"}"#);
    let rejected = status
        .get("volatile")
        .and_then(|v| v.get("rejected"))
        .and_then(Value::as_u64)
        .expect("status carries rejection count");
    assert!(rejected >= 3, "status under-counts rejections: {status:?}");

    shutdown_daemon(daemon);
}

/// An injected engine panic degrades that request to an UNKNOWN verdict
/// with an explanatory note — and the daemon answers the next request
/// normally on the same and on fresh connections.
#[test]
fn injected_panic_degrades_one_request_and_spares_the_daemon() {
    let sock = sock_path("serve_panic");
    let daemon = spawn_daemon(&sock, &["--threads", "1"], &[("PARRA_INJECT_PANIC", "mp")]);

    let poisoned = request(
        &sock,
        r#"{"proto":1,"id":"p","type":"verify","litmus":"mp"}"#,
    );
    assert_eq!(field(&poisoned, "type"), "result");
    assert_eq!(field(&poisoned, "verdict"), "UNKNOWN", "{poisoned:?}");
    let notes: Vec<String> = poisoned
        .get("reports")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .flat_map(|r| {
            r.get("notes")
                .and_then(Value::as_arr)
                .unwrap_or(&[])
                .to_vec()
        })
        .filter_map(|n| n.as_str().map(str::to_string))
        .collect();
    assert!(
        notes.iter().any(|n| n.contains("engine panicked")),
        "no degradation note: {notes:?}"
    );

    // `sb` does not match the needle: served normally, right after.
    let healthy = request(
        &sock,
        r#"{"proto":1,"id":"h","type":"verify","litmus":"sb"}"#,
    );
    assert_eq!(field(&healthy, "verdict"), "UNSAFE", "{healthy:?}");
    shutdown_daemon(daemon);
}

/// An injected spent deadline yields a structured interrupted response
/// (never a hang, never a wrong verdict) and leaves the daemon healthy.
#[test]
fn injected_deadline_interrupts_one_request_and_spares_the_daemon() {
    let sock = sock_path("serve_deadline");
    // The needle matches the explicit request *name*, so the later plain
    // `rcu` request is untouched.
    let daemon = spawn_daemon(
        &sock,
        &["--threads", "1"],
        &[("PARRA_INJECT_DEADLINE", "cut-me")],
    );

    let cut = request(
        &sock,
        r#"{"proto":1,"id":"d","type":"verify","litmus":"rcu","name":"cut-me"}"#,
    );
    // The aggregate degrades to UNKNOWN (mirroring `parra batch`), with
    // the interruption reason surfaced both at top level and in the
    // engine report.
    assert_eq!(field(&cut, "type"), "result");
    assert_eq!(field(&cut, "verdict"), "UNKNOWN", "{cut:?}");
    assert_eq!(field(&cut, "interrupted"), "deadline", "{cut:?}");
    let report_verdict = cut
        .get("reports")
        .and_then(Value::as_arr)
        .and_then(|rs| rs.first())
        .map(|r| field(r, "verdict").to_string());
    assert_eq!(
        report_verdict.as_deref(),
        Some("INTERRUPTED(deadline)"),
        "{cut:?}"
    );

    let healthy = request(
        &sock,
        r#"{"proto":1,"id":"h","type":"verify","litmus":"rcu"}"#,
    );
    assert_eq!(field(&healthy, "verdict"), "SAFE", "{healthy:?}");
    shutdown_daemon(daemon);
}
