//! Corpus replay and round-trip regression tests (tier 1).
//!
//! * every `.ra` file in `examples/systems/` and `corpus/` survives
//!   `parse → pretty → parse` with an identical [`ParamSystem`] (catches
//!   silent parser/printer drift);
//! * every corpus entry passes the fuzz oracles its file name designates
//!   (regressions caught by fuzzing stay caught);
//! * `Verifier` verdicts and report statistics are insensitive to the
//!   order in which a `SystemBuilder` interned variables and registers.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_fuzz::oracle::all_oracles;
use parra_fuzz::{corpus, runner};
use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::parser::parse_system;
use parra_program::pretty;
use std::path::Path;

fn ra_files(dir: &str) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ra"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "{dir} holds no .ra files");
    files
}

#[test]
fn example_systems_round_trip_through_the_pretty_printer() {
    for path in ra_files("examples/systems") {
        let text = std::fs::read_to_string(&path).unwrap();
        let sys = parse_system(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = pretty::system_to_string(&sys);
        let reparsed = parse_system(&printed).unwrap_or_else(|e| {
            panic!(
                "{}: pretty output does not parse: {e}\n{printed}",
                path.display()
            )
        });
        assert_eq!(
            reparsed,
            sys,
            "{}: parse(pretty(sys)) != sys",
            path.display()
        );
    }
}

#[test]
fn corpus_entries_round_trip_through_the_pretty_printer() {
    for entry in corpus::load_dir(Path::new("corpus")).unwrap() {
        let printed = pretty::system_to_string(&entry.sys);
        let reparsed = parse_system(&printed).unwrap_or_else(|e| {
            panic!(
                "{}: pretty output does not parse: {e}\n{printed}",
                entry.path.display()
            )
        });
        assert_eq!(
            reparsed,
            entry.sys,
            "{}: parse(pretty(sys)) != sys",
            entry.path.display()
        );
    }
}

#[test]
fn corpus_replays_clean_against_its_oracles() {
    let failures = runner::replay_corpus(Path::new("corpus")).unwrap();
    assert!(
        failures.is_empty(),
        "corpus regressions resurfaced:\n{}",
        failures
            .iter()
            .map(|(path, oracle, msg)| format!("  {} [{oracle}]: {msg}", path.display()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The corpus naming convention ties each seed entry to a live oracle.
#[test]
fn corpus_seed_entries_name_known_oracles() {
    let oracle_names: Vec<&str> = all_oracles().iter().map(|o| o.name()).collect();
    for entry in corpus::load_dir(Path::new("corpus")).unwrap() {
        let stem = entry.path.file_stem().unwrap().to_str().unwrap();
        assert!(
            oracle_names.iter().any(|n| stem.starts_with(n)),
            "{}: file name designates no known oracle (known: {})",
            entry.path.display(),
            oracle_names.join(", ")
        );
    }
}

/// Builds the store-buffering shape with its vars/regs/threads interned
/// in the given order; `flip` swaps every interning decision.
fn store_buffering(flip: bool) -> parra_program::system::ParamSystem {
    let mut b = SystemBuilder::new(2);
    let (x, y) = if flip {
        let y = b.var("y");
        let x = b.var("x");
        (x, y)
    } else {
        let x = b.var("x");
        let y = b.var("y");
        (x, y)
    };
    let mut env = b.program("env");
    let (r0, r1) = if flip {
        let r1 = env.reg("r1");
        let r0 = env.reg("r0");
        (r0, r1)
    } else {
        let r0 = env.reg("r0");
        let r1 = env.reg("r1");
        (r0, r1)
    };
    env.store(x, Expr::val(1)).load(r0, y).load(r1, x);
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.store(y, Expr::val(1))
        .load(s, x)
        .assume_eq(s, 0)
        .assert_false();
    let d = d.finish();
    b.build(env, vec![d])
}

/// Satellite of the fuzzing issue: two `SystemBuilder` constructions of
/// the same program — differing only in the order variables and
/// registers were interned — must yield identical verdicts and identical
/// search statistics from every engine. Identifier order must not leak
/// into the search.
#[test]
fn verdicts_and_stats_are_insensitive_to_interning_order() {
    let a = store_buffering(false);
    let b = store_buffering(true);
    // The systems are intentionally *not* equal as values (their symbol
    // tables differ); the claim is about the verification results.
    assert_ne!(a, b, "flip did not change interning order");
    let va = Verifier::new(&a, VerifierOptions::default()).unwrap();
    let vb = Verifier::new(&b, VerifierOptions::default()).unwrap();
    for engine in [
        EngineId::SimplifiedReach,
        EngineId::CacheDatalog,
        EngineId::BoundedConcrete,
    ] {
        let ra = va.run(engine);
        let rb = vb.run(engine);
        assert_eq!(ra.verdict, rb.verdict, "{engine}: verdict");
        assert_eq!(ra.stats.states, rb.stats.states, "{engine}: states");
        assert_eq!(ra.stats.worlds, rb.stats.worlds, "{engine}: worlds");
        assert_eq!(
            ra.stats.peak_env_msgs, rb.stats.peak_env_msgs,
            "{engine}: peak_env_msgs"
        );
        assert_eq!(ra.stats.guesses, rb.stats.guesses, "{engine}: guesses");
        assert_eq!(
            ra.stats.datalog_rules, rb.stats.datalog_rules,
            "{engine}: datalog_rules"
        );
        assert_eq!(
            ra.env_thread_bound, rb.env_thread_bound,
            "{engine}: env_thread_bound"
        );
    }
}

/// The seed entries written by `examples/seed_corpus.rs` regenerate
/// byte-identically from their recorded oracle + seed — the provenance
/// headers stay honest.
#[test]
fn seed_corpus_entries_match_their_provenance() {
    use parra_fuzz::gen::SystemGen;
    for o in all_oracles() {
        let path = format!("corpus/{}-{:016x}.ra", o.name(), 7);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{path}: {e} (run `cargo run -p parra-fuzz --example seed_corpus -- corpus/`)")
        });
        let recorded = parse_system(&text).unwrap();
        let regenerated = SystemGen::new(o.gen_config()).case(7).sys;
        assert_eq!(
            recorded, regenerated,
            "{path}: stale seed entry — regenerate with the seed_corpus example"
        );
        // And the oracle itself accepts its own family representative.
        assert!(
            !o.check(&recorded).is_fail(),
            "{path}: oracle {} fails on its seed entry",
            o.name()
        );
    }
}

/// A corpus file whose name matches no oracle is replayed against every
/// oracle (the conservative fallback) rather than silently skipped.
#[test]
fn unprefixed_entries_replay_against_all_oracles() {
    let dir = std::env::temp_dir().join(format!("parra-fuzz-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("unprefixed.ra"),
        "system { dom 2; vars x; env e { regs r; r <- x; } dis d { x := 1; } }",
    )
    .unwrap();
    let failures = runner::replay_corpus(&dir).unwrap();
    assert!(failures.is_empty(), "{failures:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
