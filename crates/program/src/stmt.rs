//! The `Com` statement syntax and its derived forms.
//!
//! ```text
//! c ::= skip | assume e(r̄) | assert false | r := e(r̄)
//!     | c; c | c ⊕ c | c* | r := x | x := e | cas(x, e₁, e₂)
//! ```
//!
//! Two liberalizations relative to the paper's grammar, both conservative:
//!
//! * stores write the value of an arbitrary expression (`x := e` instead of
//!   `x := r`) — the paper's form is the special case `e = r`, and the
//!   general form is macro-expressible via a scratch register;
//! * `cas` compares/stores expression values rather than registers, for the
//!   same reason.
//!
//! `if` and `while` are derived (see [`Com::if_then_else`] and
//! [`Com::while_loop`]), exactly as noted in the paper.

use crate::expr::Expr;
use crate::ident::{RegId, VarId};

/// A `Com` program statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Com {
    /// `skip` — no effect.
    Skip,
    /// `assume e` — blocks unless `e` evaluates to a non-zero value.
    Assume(Expr),
    /// `assert false` — reaching this instruction is the safety violation.
    AssertFalse,
    /// `r := e` — local register assignment.
    Assign(RegId, Expr),
    /// `c₁; c₂` — sequential composition.
    Seq(Box<Com>, Box<Com>),
    /// `c₁ ⊕ c₂` — non-deterministic choice.
    Choice(Box<Com>, Box<Com>),
    /// `c*` — iteration (zero or more executions of `c`).
    Star(Box<Com>),
    /// `r := x` — load from shared variable `x` into register `r`.
    Load(RegId, VarId),
    /// `x := e` — store the value of `e` to shared variable `x`.
    Store(VarId, Expr),
    /// `cas(x, e₁, e₂)` — atomic compare-and-swap: atomically load `x`,
    /// block unless the loaded value equals `e₁`, then store `e₂` with an
    /// adjacent timestamp.
    Cas(VarId, Expr, Expr),
}

impl Com {
    /// Sequential composition of any number of statements.
    /// `Com::seq([])` is `skip`.
    ///
    /// Nested `Seq` parts are flattened into the left fold, so the result
    /// is always in the canonical left-associated shape the parser
    /// produces for a statement list. This makes multi-statement derived
    /// forms (notably the `await` desugaring, a `load; assume` pair)
    /// structurally equal to their pretty-printed-and-reparsed selves.
    pub fn seq<I: IntoIterator<Item = Com>>(parts: I) -> Com {
        fn append(acc: Option<Com>, c: Com) -> Option<Com> {
            match c {
                Com::Seq(a, b) => append(append(acc, *a), *b),
                c => Some(match acc {
                    None => c,
                    Some(acc) => Com::Seq(Box::new(acc), Box::new(c)),
                }),
            }
        }
        parts.into_iter().fold(None, append).unwrap_or(Com::Skip)
    }

    /// Non-deterministic choice among any number of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty — an empty choice has no semantics.
    pub fn choice<I: IntoIterator<Item = Com>>(parts: I) -> Com {
        let mut iter = parts.into_iter();
        let first = iter.next().expect("choice of zero alternatives");
        iter.fold(first, |acc, c| Com::Choice(Box::new(acc), Box::new(c)))
    }

    /// `c*` — iteration.
    pub fn star(c: Com) -> Com {
        Com::Star(Box::new(c))
    }

    /// Then-branch conditional: `if e { c }` ≜ `(assume e; c) ⊕ assume !e`.
    pub fn if_then(cond: Expr, then: Com) -> Com {
        Com::if_then_else(cond, then, Com::Skip)
    }

    /// Conditional, derived exactly as the paper describes:
    /// `if e { c₁ } else { c₂ }` ≜ `(assume e; c₁) ⊕ (assume !e; c₂)`.
    pub fn if_then_else(cond: Expr, then: Com, els: Com) -> Com {
        Com::choice([
            Com::seq([Com::Assume(cond.clone()), then]),
            Com::seq([Com::Assume(cond.not()), els]),
        ])
    }

    /// Loop, derived as `while e { c }` ≜ `(assume e; c)*; assume !e`.
    pub fn while_loop(cond: Expr, body: Com) -> Com {
        Com::seq([
            Com::star(Com::seq([Com::Assume(cond.clone()), body])),
            Com::Assume(cond.not()),
        ])
    }

    /// A wait loop (`read-till-specific-value`), remodelled as the paper
    /// prescribes for the `barrier` and `peterson-ra-bratosz` benchmarks:
    /// a load followed by an `assume`, using scratch register `scratch`.
    pub fn await_value(x: VarId, scratch: RegId, expected: Expr) -> Com {
        Com::seq([
            Com::Load(scratch, x),
            Com::Assume(Expr::reg(scratch).eq(expected)),
        ])
    }

    /// Whether the statement contains a `cas` operation (the `nocas`
    /// restriction of the paper forbids these).
    pub fn has_cas(&self) -> bool {
        match self {
            Com::Cas(..) => true,
            Com::Seq(a, b) | Com::Choice(a, b) => a.has_cas() || b.has_cas(),
            Com::Star(c) => c.has_cas(),
            _ => false,
        }
    }

    /// Whether the statement contains iteration `c*` (so its control flow
    /// has a cycle; the `acyc` restriction forbids these).
    pub fn has_star(&self) -> bool {
        match self {
            Com::Star(_) => true,
            Com::Seq(a, b) | Com::Choice(a, b) => a.has_star() || b.has_star(),
            _ => false,
        }
    }

    /// Whether the statement contains `assert false`.
    pub fn has_assert(&self) -> bool {
        match self {
            Com::AssertFalse => true,
            Com::Seq(a, b) | Com::Choice(a, b) => a.has_assert() || b.has_assert(),
            Com::Star(c) => c.has_assert(),
            _ => false,
        }
    }

    /// The registers mentioned anywhere in the statement.
    pub fn registers(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        self.collect_registers(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_registers(&self, out: &mut Vec<RegId>) {
        match self {
            Com::Skip | Com::AssertFalse => {}
            Com::Assume(e) | Com::Store(_, e) => out.extend(e.registers()),
            Com::Assign(r, e) => {
                out.push(*r);
                out.extend(e.registers());
            }
            Com::Seq(a, b) | Com::Choice(a, b) => {
                a.collect_registers(out);
                b.collect_registers(out);
            }
            Com::Star(c) => c.collect_registers(out),
            Com::Load(r, _) => out.push(*r),
            Com::Cas(_, e1, e2) => {
                out.extend(e1.registers());
                out.extend(e2.registers());
            }
        }
    }

    /// The shared variables mentioned anywhere in the statement.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_variables(&self, out: &mut Vec<VarId>) {
        match self {
            Com::Skip | Com::AssertFalse | Com::Assume(_) | Com::Assign(..) => {}
            Com::Seq(a, b) | Com::Choice(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Com::Star(c) => c.collect_variables(out),
            Com::Load(_, x) | Com::Store(x, _) | Com::Cas(x, ..) => out.push(*x),
        }
    }

    /// Number of atomic instructions (leaves other than `skip`), an upper
    /// bound on instructions executed per run for loop-free programs — the
    /// quantity the paper calls `|c_dis|` when bounding the timestamp budget
    /// `T` (Section 4.1).
    pub fn instruction_count(&self) -> usize {
        match self {
            Com::Skip => 0,
            Com::Assume(_)
            | Com::AssertFalse
            | Com::Assign(..)
            | Com::Load(..)
            | Com::Store(..) => 1,
            // A CAS is a load and a store executed atomically: it consumes
            // one timestamp for the store (the load consumes none).
            Com::Cas(..) => 1,
            Com::Seq(a, b) => a.instruction_count() + b.instruction_count(),
            Com::Choice(a, b) => a.instruction_count().max(b.instruction_count()),
            Com::Star(c) => c.instruction_count(),
        }
    }

    /// Number of store instructions on any path (maximum over choices),
    /// bounding how many timestamps a loop-free program can consume.
    pub fn store_count_bound(&self) -> usize {
        match self {
            Com::Store(..) | Com::Cas(..) => 1,
            Com::Seq(a, b) => a.store_count_bound() + b.store_count_bound(),
            Com::Choice(a, b) => a.store_count_bound().max(b.store_count_bound()),
            Com::Star(c) => c.store_count_bound(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn x() -> VarId {
        VarId(0)
    }
    fn r() -> RegId {
        RegId(0)
    }

    #[test]
    fn seq_of_empty_is_skip() {
        assert_eq!(Com::seq([]), Com::Skip);
    }

    #[test]
    fn seq_left_folds() {
        let c = Com::seq([Com::Skip, Com::AssertFalse, Com::Skip]);
        match c {
            Com::Seq(a, b) => {
                assert_eq!(*b, Com::Skip);
                match *a {
                    Com::Seq(a1, b1) => {
                        assert_eq!(*a1, Com::Skip);
                        assert_eq!(*b1, Com::AssertFalse);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "zero alternatives")]
    fn empty_choice_panics() {
        Com::choice([]);
    }

    #[test]
    fn derived_if_shape() {
        let c = Com::if_then_else(Expr::truth(), Com::AssertFalse, Com::Skip);
        assert!(matches!(c, Com::Choice(..)));
        assert!(c.has_assert());
        assert!(!c.has_star());
    }

    #[test]
    fn derived_while_has_star() {
        let c = Com::while_loop(Expr::truth(), Com::Skip);
        assert!(c.has_star());
    }

    #[test]
    fn seq_flattens_nested_seqs_into_the_left_fold() {
        // seq([Store, Seq(Load, Assume)]) — the shape the await desugaring
        // feeds into a statement list — must equal the flat left fold that
        // reparsing the pretty-printed statements produces.
        let nested = Com::seq([
            Com::Store(x(), Expr::Const(Val(1))),
            Com::seq([Com::Load(r(), x()), Com::Assume(Expr::truth())]),
        ]);
        let flat = Com::seq([
            Com::Store(x(), Expr::Const(Val(1))),
            Com::Load(r(), x()),
            Com::Assume(Expr::truth()),
        ]);
        assert_eq!(nested, flat);
        match &flat {
            Com::Seq(a, _) => assert!(matches!(**a, Com::Seq(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn await_is_load_then_assume() {
        let c = Com::await_value(x(), r(), Expr::Const(Val(1)));
        match c {
            Com::Seq(a, b) => {
                assert_eq!(*a, Com::Load(r(), x()));
                assert!(matches!(*b, Com::Assume(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cas_detection() {
        let c = Com::seq([
            Com::Skip,
            Com::star(Com::Cas(x(), Expr::val(0), Expr::val(1))),
        ]);
        assert!(c.has_cas());
        assert!(!Com::Load(r(), x()).has_cas());
    }

    #[test]
    fn collects_registers_and_variables() {
        let c = Com::seq([
            Com::Load(RegId(1), VarId(2)),
            Com::Store(VarId(0), Expr::reg(RegId(0))),
            Com::Cas(VarId(1), Expr::val(0), Expr::reg(RegId(1))),
        ]);
        assert_eq!(c.registers(), vec![RegId(0), RegId(1)]);
        assert_eq!(c.variables(), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn instruction_and_store_bounds() {
        let c = Com::seq([
            Com::Store(x(), Expr::val(1)),
            Com::choice([
                Com::Store(x(), Expr::val(0)),
                Com::seq([Com::Load(r(), x()), Com::Store(x(), Expr::val(1))]),
            ]),
        ]);
        assert_eq!(c.store_count_bound(), 2);
        assert_eq!(c.instruction_count(), 3);
    }
}
