//! Campaign planning and execution.
//!
//! A campaign run has two halves. **Planning** is pure: read every
//! input, canonicalize it through the parser + pretty-printer, compute
//! its content key, mark the keys the merged store already settles
//! (cache hits) and — under `--shard K/N` — the keys this process owns.
//! **Execution** walks the plan in input order, verifies each owned
//! uncached entry inside a panic shield, and appends one record to the
//! store per input, flushed immediately: the checkpoint a resume picks
//! up from.
//!
//! Shard assignment is deterministic in *sorted key order*, not input
//! order, so every shard of a fleet computes the same partition from the
//! same manifest without coordination, whatever order its operator
//! listed the inputs in.

use crate::hash::content_key;
use crate::store::{Record, Store};
use parra_core::verify::{Verdict, Verifier, VerifierOptions};
use parra_core::EngineId;
use parra_obs::{Level, Recorder};
use parra_program::parser::parse_system;
use parra_program::pretty::system_to_string;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Exit code of the `PARRA_CAMPAIGN_KILL_AFTER` crash-injection hook,
/// chosen outside the CLI's 0/1/2/64+ vocabulary so tests can tell an
/// injected kill from a real outcome.
pub const KILL_EXIT_CODE: u8 = 86;

/// One shard of a fanned-out sweep: this process is worker `k` of `n`
/// (1-based, as in `--shard 2/4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This worker's 1-based index.
    pub k: u64,
    /// Total number of workers.
    pub n: u64,
}

impl Shard {
    /// Parses `K/N`, requiring `1 <= K <= N`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("--shard: expected K/N, got `{s}`"))?;
        let k: u64 = k.trim().parse().map_err(|e| format!("--shard K: {e}"))?;
        let n: u64 = n.trim().parse().map_err(|e| format!("--shard N: {e}"))?;
        if n == 0 || k == 0 || k > n {
            return Err(format!("--shard: need 1 <= K <= N, got {k}/{n}"));
        }
        Ok(Shard { k, n })
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.k, self.n)
    }
}

/// What to run and how — the campaign-level view of one sweep.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Engines to run per input.
    pub engines: Vec<EngineId>,
    /// Race the engines instead of running them sequentially.
    pub race: bool,
    /// The engine-selection label recorded in keys and the manifest:
    /// one engine's name, `all-engines`, or `race`.
    pub engine_label: String,
    /// Verifier options; `options.fingerprint()` is part of every key.
    pub options: VerifierOptions,
    /// Shard assignment, when this process is one worker of a fleet.
    pub shard: Option<Shard>,
}

impl CampaignOptions {
    /// The options fingerprint keyed into the store.
    pub fn options_fp(&self) -> String {
        self.options.fingerprint()
    }
}

/// One planned input.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// The input path as given.
    pub input: String,
    /// The content key (stable even for unreadable/unparseable inputs —
    /// derived from an error marker so the entry still shards
    /// deterministically).
    pub key: String,
    /// The canonical system text, when the input parsed.
    pub canonical: Option<String>,
    /// Why the input cannot be verified (read or parse failure).
    pub error: Option<String>,
    /// The merged store already settles this key: skip it.
    pub cached: bool,
    /// This process's shard owns the key (always true unsharded).
    pub assigned: bool,
}

/// Totals of one campaign run, in inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Inputs planned (everything listed).
    pub planned: u64,
    /// Inputs this shard owns.
    pub assigned: u64,
    /// Owned inputs skipped as already settled.
    pub cached: u64,
    /// Owned inputs verified this run.
    pub verified: u64,
    /// Verdict tallies over the owned inputs' current records
    /// (cached + fresh).
    pub safe: u64,
    /// See [`Summary::safe`].
    pub unsafe_: u64,
    /// Undecided (completed `Unknown`) owned inputs.
    pub unknown: u64,
    /// Owned inputs whose latest record ended interrupted.
    pub interrupted: u64,
    /// Owned inputs whose latest record is an error.
    pub errors: u64,
}

impl Summary {
    fn tally(&mut self, record: &Record) {
        if record.error.is_some() {
            self.errors += 1;
        } else if record.interrupted.is_some() {
            self.interrupted += 1;
        } else {
            match record.verdict.as_deref() {
                Some("SAFE") => self.safe += 1,
                Some("UNSAFE") => self.unsafe_ += 1,
                _ => self.unknown += 1,
            }
        }
    }
}

/// Plans a campaign: keys every input, marks cache hits against the
/// store's merged state, and assigns shard ownership.
///
/// # Errors
///
/// Only store I/O fails the plan; unreadable or unparseable *inputs*
/// become error entries that execution records (and a resume retries).
pub fn plan(
    inputs: &[String],
    store: &Store,
    copts: &CampaignOptions,
) -> Result<Vec<PlanEntry>, String> {
    let fp = copts.options_fp();
    let merged = store.merged()?;
    let mut entries: Vec<PlanEntry> = inputs
        .iter()
        .map(|input| {
            // Error inputs still need stable keys (for dedup and shard
            // assignment); a marker keeps them disjoint from real
            // system texts, which never start with `!`.
            let (canonical, error) = match std::fs::read_to_string(input) {
                Ok(text) => match parse_system(&text) {
                    Ok(sys) => (Some(system_to_string(&sys)), None),
                    Err(e) => (None, Some(format!("parse: {e}"))),
                },
                Err(e) => (None, Some(format!("cannot read: {e}"))),
            };
            let hashed = match (&canonical, &error) {
                (Some(c), _) => c.clone(),
                (None, Some(e)) => format!("!error:{input}:{e}"),
                (None, None) => unreachable!(),
            };
            let key = content_key(&hashed, &copts.engine_label, &fp);
            let cached = merged.get(&key).is_some_and(Record::is_settled);
            PlanEntry {
                input: input.clone(),
                key,
                canonical,
                error,
                cached,
                assigned: true,
            }
        })
        .collect();

    if let Some(shard) = copts.shard {
        // Deterministic partition: sort the deduplicated key set and
        // deal keys round-robin. Every worker derives the same
        // partition from the manifest alone.
        let keys: BTreeSet<&str> = entries.iter().map(|e| e.key.as_str()).collect();
        let owned: BTreeSet<&str> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) % shard.n == shard.k - 1)
            .map(|(_, k)| *k)
            .collect();
        let owned: BTreeSet<String> = owned.into_iter().map(str::to_string).collect();
        for e in &mut entries {
            e.assigned = owned.contains(&e.key);
        }
    }
    Ok(entries)
}

/// The deterministic shard partition over a key set: `key -> shard k`
/// (1-based). Exposed for the partition tests and `status`.
pub fn shard_of(keys: &BTreeSet<String>, n: u64) -> BTreeMap<String, u64> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), (i as u64) % n + 1))
        .collect()
}

/// Runs the plan: verifies every owned, uncached entry and appends its
/// record to the store (checkpointing after each). `rec` receives
/// campaign-scope events; `on_input` fires after every owned entry —
/// cached or fresh — with the entry, its current record, and the
/// per-input recorder (enabled only when `rec` is), so the CLI can
/// stream progress lines and assemble an event log.
///
/// Honors two test hooks: `PARRA_INJECT_PANIC=<substring>` (panic on
/// matching inputs; contained, recorded as an error, retried on resume)
/// and `PARRA_CAMPAIGN_KILL_AFTER=<n>` (hard `exit(`
/// [`KILL_EXIT_CODE`]`)` after `n` fresh records — the crash-injection
/// test's simulated kill).
///
/// # Errors
///
/// Store I/O errors abort the run; per-input failures never do.
pub fn run_campaign(
    store: &Store,
    entries: &[PlanEntry],
    copts: &CampaignOptions,
    rec: &Recorder,
    mut on_input: impl FnMut(&PlanEntry, &Record, &Recorder),
) -> Result<Summary, String> {
    let kill_after: Option<u64> = std::env::var("PARRA_CAMPAIGN_KILL_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut summary = Summary {
        planned: entries.len() as u64,
        ..Summary::default()
    };
    let merged = store.merged()?;
    let crec = rec.scoped("campaign/");
    crec.event_with(
        "campaign_start",
        &[
            ("engine", copts.engine_label.as_str().into()),
            ("inputs", entries.len().into()),
            (
                "shard",
                copts
                    .shard
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "none".into())
                    .as_str()
                    .into(),
            ),
        ],
        &[],
    );
    let mut fresh = 0u64;
    for entry in entries {
        if !entry.assigned {
            continue;
        }
        summary.assigned += 1;
        if entry.cached {
            summary.cached += 1;
            let record = merged
                .get(&entry.key)
                .expect("cached entries come from the merged store");
            summary.tally(record);
            crec.event_with(
                "input_done",
                &[
                    ("input", entry.input.as_str().into()),
                    ("key", entry.key.as_str().into()),
                    ("cached", 1usize.into()),
                    (
                        "verdict",
                        record.verdict.as_deref().unwrap_or("ERROR").into(),
                    ),
                ],
                &[],
            );
            on_input(entry, record, &Recorder::disabled());
            continue;
        }
        let irec = if rec.is_enabled() {
            Recorder::enabled(Level::Summary)
        } else {
            Recorder::disabled()
        };
        let record = verify_entry(entry, copts, &irec);
        summary.verified += 1;
        summary.tally(&record);
        store.append(&record)?;
        fresh += 1;
        crec.event_with(
            "input_done",
            &[
                ("input", entry.input.as_str().into()),
                ("key", entry.key.as_str().into()),
                ("cached", 0usize.into()),
                (
                    "verdict",
                    record.verdict.as_deref().unwrap_or("ERROR").into(),
                ),
            ],
            &[("duration_us", record.duration_us)],
        );
        on_input(entry, &record, &irec);
        if kill_after.is_some_and(|n| fresh >= n) {
            // Simulated crash: die without unwinding, leaving the store
            // exactly as a real kill would — checkpointed through the
            // record just appended.
            std::process::exit(KILL_EXIT_CODE.into());
        }
    }
    crec.event_with(
        "campaign_end",
        &[
            ("assigned", (summary.assigned as usize).into()),
            ("cached", (summary.cached as usize).into()),
            ("verified", (summary.verified as usize).into()),
        ],
        &[],
    );
    Ok(summary)
}

/// Verifies one entry into a record. Panics (injected or real engine
/// escapes) are contained here so one poisoned input cannot take down a
/// 100k-input sweep.
fn verify_entry(entry: &PlanEntry, copts: &CampaignOptions, rec: &Recorder) -> Record {
    let base = Record {
        key: entry.key.clone(),
        input: entry.input.clone(),
        engine: copts.engine_label.clone(),
        verdict: None,
        interrupted: None,
        error: None,
        duration_us: 0,
    };
    if let Some(e) = &entry.error {
        return Record {
            error: Some(e.clone()),
            ..base
        };
    }
    let canonical = entry
        .canonical
        .as_deref()
        .expect("entries without errors carry canonical text");
    let start = std::time::Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(needle) = std::env::var("PARRA_INJECT_PANIC") {
            if !needle.is_empty() && entry.input.contains(&needle) {
                panic!("injected panic (PARRA_INJECT_PANIC={needle})");
            }
        }
        let sys = parse_system(canonical).map_err(|e| format!("canonical text re-parse: {e}"))?;
        let verifier = Verifier::new_with_recorder(&sys, copts.options.clone(), rec.clone())
            .map_err(|e| e.to_string())?;
        verifier.run_selection(&copts.engines, copts.race)
    }));
    let duration_us = start.elapsed().as_micros() as u64;
    match outcome {
        Ok(Ok(sel)) => {
            // Batch-line parity: the interruption reason is kept only
            // while the aggregate is undecided. (`--strict`-style budget
            // audits live in the CLI, not the store.)
            let interrupted = if sel.verdict.is_decided() {
                None
            } else {
                sel.interrupted
            };
            Record {
                verdict: Some(sel.verdict.to_verdict_str().to_string()),
                interrupted: interrupted.map(|r| r.as_str().to_string()),
                duration_us,
                ..base
            }
        }
        Ok(Err(error)) => Record {
            error: Some(error),
            duration_us,
            ..base
        },
        Err(payload) => {
            let msg: &str = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("panic with non-string payload");
            Record {
                error: Some(format!("panicked: {msg}")),
                duration_us,
                ..base
            }
        }
    }
}

/// The plain verdict word stored in records: `SAFE`, `UNSAFE`, or
/// `UNKNOWN` — interruption detail lives in the `interrupted` field,
/// not the verdict string, so resumes that re-run an interrupted input
/// converge on the same deterministic text.
trait VerdictStr {
    fn to_verdict_str(&self) -> &'static str;
}

impl VerdictStr for Verdict {
    fn to_verdict_str(&self) -> &'static str {
        match self {
            Verdict::Safe => "SAFE",
            Verdict::Unsafe => "UNSAFE",
            Verdict::Unknown | Verdict::Interrupted(_) => "UNKNOWN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parse_validates() {
        assert_eq!(Shard::parse("2/4").unwrap(), Shard { k: 2, n: 4 });
        assert!(Shard::parse("0/4").is_err());
        assert!(Shard::parse("5/4").is_err());
        assert!(Shard::parse("4").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn shard_of_partitions_without_overlap() {
        let keys: BTreeSet<String> = (0..17).map(|i| format!("k{i:02}")).collect();
        for n in [1u64, 2, 3, 5, 17, 20] {
            let assign = shard_of(&keys, n);
            assert_eq!(assign.len(), keys.len());
            for k in 1..=n {
                let mine: Vec<_> = assign.values().filter(|&&v| v == k).collect();
                if k <= 17 {
                    assert!(!mine.is_empty() || n > 17);
                }
            }
            assert!(assign.values().all(|&v| 1 <= v && v <= n));
        }
    }
}
