#![warn(missing_docs)]

//! # parra-search — deterministic sharded-frontier parallel search
//!
//! The two state-space engines ([`Reachability`] in `parra-simplified` and
//! [`Explorer`] in `parra-ra`) are breadth-first searches whose hot path —
//! expanding a state into its saturated/canonicalized successors — is
//! embarrassingly parallel across the frontier, while their bookkeeping
//! (state-id assignment, dedup, limits, witness parents) must stay
//! *deterministic* so that a parallel run reports byte-identical verdicts,
//! state counts, and witnesses to the sequential one.
//!
//! This crate provides the shared machinery, built on `std` alone
//! (`std::thread::scope`; the workspace is dependency-free):
//!
//! | need | API |
//! |---|---|
//! | pick a worker count | [`Threads`] (`--threads` > `PARRA_THREADS` > `available_parallelism`) |
//! | expand a frontier in parallel, merge in order | [`ordered_map`] |
//! | hash-sharded visited set | [`ShardedIndex`] |
//! | states + parents + dedup + witness unwind | [`SearchGraph`] |
//! | race N heterogeneous jobs to the first decisive result | [`race`] |
//!
//! The invariant every engine built on this crate maintains: **worker
//! threads only produce per-item results; all decisions that affect the
//! report (id assignment, dedup, truncation, target checks) happen in a
//! sequential merge that walks the items in frontier order** — the exact
//! order the legacy single-threaded loop used. Parallelism changes
//! wall-clock time, never the answer.
//!
//! [`Reachability`]: ../parra_simplified/reach/struct.Reachability.html
//! [`Explorer`]: ../parra_ra/explore/struct.Explorer.html

pub mod frontier;
pub mod graph;
pub mod race;
pub mod shard;
pub mod threads;

pub use frontier::{ordered_map, round_chunk};
pub use graph::SearchGraph;
pub use race::{race, RaceOutcome};
pub use shard::ShardedIndex;
pub use threads::Threads;
