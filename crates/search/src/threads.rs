//! Worker-count resolution: CLI flag > `PARRA_THREADS` > hardware.

use std::num::NonZeroUsize;

/// A resolved worker count for the parallel search layer.
///
/// `1` means *sequential*: engines take their exact legacy code path (no
/// worker threads are ever spawned). Anything larger enables
/// sharded-frontier parallel expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// Resolves a worker count with the standard precedence:
    ///
    /// 1. `explicit` (the `--threads N` CLI flag), when given;
    /// 2. the `PARRA_THREADS` environment variable, when parsable;
    /// 3. [`std::thread::available_parallelism`], falling back to 1.
    ///
    /// Zero (from any source) is clamped to 1.
    pub fn resolve(explicit: Option<usize>) -> Threads {
        let n = explicit
            .or_else(|| {
                std::env::var("PARRA_THREADS")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Threads(NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"))
    }

    /// An explicit worker count (clamped to at least 1).
    pub fn exact(n: usize) -> Threads {
        Threads(NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"))
    }

    /// The number of workers.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this is the sequential (legacy code path) setting.
    pub fn is_sequential(self) -> bool {
        self.get() == 1
    }
}

impl Default for Threads {
    fn default() -> Threads {
        Threads::resolve(None)
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_wins_and_zero_clamps() {
        assert_eq!(Threads::resolve(Some(3)).get(), 3);
        assert_eq!(Threads::resolve(Some(0)).get(), 1);
        assert_eq!(Threads::exact(0).get(), 1);
        assert!(Threads::exact(1).is_sequential());
        assert!(!Threads::exact(2).is_sequential());
    }

    #[test]
    fn resolution_yields_at_least_one() {
        // Whatever the environment says, the result is a valid count.
        assert!(Threads::resolve(None).get() >= 1);
    }
}
