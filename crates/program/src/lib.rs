#![warn(missing_docs)]

//! # parra-program — the `Com` while-language
//!
//! This crate implements the program syntax of the paper *"Parameterized
//! Verification under Release Acquire is PSPACE-complete"* (PODC 2022),
//! Section 1:
//!
//! ```text
//! c ::= skip | assume e(r̄) | assert false | r := e(r̄)
//!     | c; c | c ⊕ c | c* | r := x | x := r | cas(x, r₁, r₂)
//! ```
//!
//! Programs compute on thread-local registers over a finite data domain and
//! interact with shared variables through loads, stores, and atomic
//! compare-and-swap. Conditionals and loops are derived forms.
//!
//! The crate provides:
//!
//! * the abstract syntax ([`Com`], [`Expr`]) and finite domains ([`Dom`],
//!   [`Val`]),
//! * compilation to control-flow automata ([`Cfa`]) — the representation all
//!   verification engines consume,
//! * classification into the paper's system classes (`nocas`, `acyc`,
//!   Table 1) in [`classify`],
//! * parameterized systems `env(…) ‖ dis₁(…) ‖ … ‖ disₙ(…)` in [`system`],
//! * a concrete text syntax ([`parser`]) and an ergonomic Rust builder
//!   ([`builder`]),
//! * source-to-source transformations in [`transform`]: bounded loop
//!   unrolling and the `assert false ↦ x# := d#` goal-message rewriting of
//!   Section 4.1.
//!
//! # Example
//!
//! ```
//! use parra_program::parser::parse_system;
//!
//! let sys = parse_system(
//!     r#"
//!     system {
//!         dom 3;
//!         vars x, y;
//!         env producer {
//!             regs r;
//!             r <- y;
//!             assume r == 1;
//!             x := 1;
//!         }
//!         dis consumer {
//!             regs s;
//!             y := 1;
//!             s <- x;
//!             assume s == 1;
//!             assert false;
//!         }
//!     }
//!     "#,
//! )?;
//! assert_eq!(sys.dis.len(), 1);
//! assert!(sys.env.cfa().is_cas_free());
//! # Ok::<(), parra_program::parser::ParseError>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod classify;
pub mod expr;
pub mod ident;
pub mod parser;
pub mod pretty;
pub mod stmt;
pub mod system;
pub mod transform;
pub mod value;

pub use cfg::{Cfa, Edge, Instr, Loc};
pub use classify::{Complexity, SystemClass, ThreadClass};
pub use expr::{Binop, Expr, RegVal, Unop};
pub use ident::{RegId, SymbolTable, VarId};
pub use stmt::Com;
pub use system::{ParamSystem, Program, ThreadKind};
pub use value::{Dom, Val};
