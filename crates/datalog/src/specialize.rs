//! Grounding of EDB side-conditions.
//!
//! The `makeP` encoding (see `parra-core`) uses small *extensional* relations
//! (timestamp order, joins) as side-conditions in rule bodies. For engines
//! that restrict body size — notably the Lemma 4.2 cache-to-linear
//! translation, which supports at most two body atoms — these side
//! conditions can be *specialized away*: every rule is instantiated with
//! each consistent combination of EDB facts, and the EDB atoms are removed
//! from the body.
//!
//! The result is equivalent for query evaluation (the EDB relations are
//! fixed) and multiplies the rule count by at most the product of the EDB
//! relation sizes per rule.

use crate::ast::{Atom, Const, PredId, Program, Term};
use std::collections::{HashMap, HashSet};

/// Replaces EDB body atoms by enumerating their facts.
///
/// `edb` lists the predicates to specialize. Their facts are taken from
/// `prog` itself; the facts are dropped from the output program (they are
/// no longer referenced).
///
/// # Panics
///
/// Panics if an EDB predicate appears in a rule head with a non-empty body
/// (it would not be extensional).
pub fn specialize_edb(prog: &Program, edb: &HashSet<PredId>) -> Program {
    // Collect EDB facts.
    let mut facts: HashMap<PredId, Vec<Vec<Const>>> = HashMap::new();
    for rule in prog.rules() {
        if rule.is_fact() && edb.contains(&rule.head.pred) {
            facts
                .entry(rule.head.pred)
                .or_default()
                .push(rule.head.to_ground().args);
        }
    }
    for rule in prog.rules() {
        if !rule.is_fact() {
            assert!(
                !edb.contains(&rule.head.pred),
                "EDB predicate `{}` derived by a rule",
                prog.pred_name(rule.head.pred)
            );
        }
    }

    let mut out = Program::new();
    // Re-declare predicates to keep ids stable.
    for p in prog.predicates() {
        out.predicate(prog.pred_name(p), prog.pred_arity(p));
    }

    for rule in prog.rules() {
        if rule.is_fact() && edb.contains(&rule.head.pred) {
            continue; // dropped
        }
        let (edb_atoms, idb_atoms): (Vec<&Atom>, Vec<&Atom>) =
            rule.body.iter().partition(|a| edb.contains(&a.pred));
        if edb_atoms.is_empty() {
            out.rule(rule.head.clone(), rule.body.clone())
                .expect("rule was valid");
            continue;
        }
        // Enumerate consistent EDB instantiations.
        let mut substs: Vec<HashMap<u32, Const>> = vec![HashMap::new()];
        for atom in &edb_atoms {
            let empty = Vec::new();
            let rel = facts.get(&atom.pred).unwrap_or(&empty);
            let mut next_substs = Vec::new();
            for s in &substs {
                for tuple in rel {
                    if let Some(s2) = extend(atom, tuple, s) {
                        next_substs.push(s2);
                    }
                }
            }
            substs = next_substs;
            if substs.is_empty() {
                break;
            }
        }
        for s in substs {
            let subst_atom = |a: &Atom| Atom {
                pred: a.pred,
                terms: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Term::Const(*c),
                        Term::Var(v) => match s.get(v) {
                            Some(c) => Term::Const(*c),
                            None => Term::Var(*v),
                        },
                    })
                    .collect(),
            };
            let head = subst_atom(&rule.head);
            let body: Vec<Atom> = idb_atoms.iter().map(|a| subst_atom(a)).collect();
            out.rule(head, body).expect("specialized rule remains safe");
        }
    }
    out
}

fn extend(
    pattern: &Atom,
    tuple: &[Const],
    base: &HashMap<u32, Const>,
) -> Option<HashMap<u32, Const>> {
    if pattern.terms.len() != tuple.len() {
        return None;
    }
    let mut s = base.clone();
    for (t, c) in pattern.terms.iter().zip(tuple) {
        match t {
            Term::Const(k) => {
                if k != c {
                    return None;
                }
            }
            Term::Var(v) => match s.get(v) {
                Some(bound) if bound != c => return None,
                Some(_) => {}
                None => {
                    s.insert(*v, *c);
                }
            },
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GroundAtom;
    use crate::eval::Evaluator;

    /// reach over a successor relation used as an EDB side-condition.
    #[test]
    fn specialization_preserves_query() {
        let mut p = Program::new();
        let succ = p.predicate("succ", 2);
        let reach = p.predicate("reach", 1);
        let c: Vec<Const> = (0..4).map(|i| p.constant(&format!("n{i}"))).collect();
        for w in c.windows(2) {
            p.fact(succ, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![c[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(succ, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();

        let edb: HashSet<PredId> = [succ].into_iter().collect();
        let sp = specialize_edb(&p, &edb);
        // The rule is now linear (succ specialized away), 3 instances.
        assert!(sp.rules().iter().all(|r| r.body.len() <= 1));
        let goal = GroundAtom::new(reach, vec![c[3]]);
        assert_eq!(
            Evaluator::new(&p).query(&goal),
            Evaluator::new(&sp).query(&goal)
        );
        assert!(Evaluator::new(&sp).query(&goal));
        // EDB facts are gone from the specialized program.
        assert!(sp
            .rules()
            .iter()
            .all(|r| !(r.is_fact() && r.head.pred == succ)));
    }

    #[test]
    fn unsatisfiable_edb_atom_kills_rule() {
        let mut p = Program::new();
        let e = p.predicate("e", 1);
        let q = p.predicate("q", 0);
        let r = p.predicate("r", 0);
        let a = p.constant("a");
        let b = p.constant("b");
        p.fact(e, vec![a]).unwrap();
        p.fact(r, vec![]).unwrap();
        // q :- r, e(b): e(b) is not a fact → rule disappears.
        p.rule(
            Atom::new(q, vec![]),
            vec![Atom::new(r, vec![]), Atom::new(e, vec![Term::Const(b)])],
        )
        .unwrap();
        let edb: HashSet<PredId> = [e].into_iter().collect();
        let sp = specialize_edb(&p, &edb);
        let goal = GroundAtom::new(q, vec![]);
        assert!(!Evaluator::new(&sp).query(&goal));
    }

    #[test]
    #[should_panic(expected = "derived by a rule")]
    fn derived_edb_rejected() {
        let mut p = Program::new();
        let e = p.predicate("e", 0);
        let q = p.predicate("q", 0);
        p.fact(q, vec![]).unwrap();
        p.rule(Atom::new(e, vec![]), vec![Atom::new(q, vec![])])
            .unwrap();
        let edb: HashSet<PredId> = [e].into_iter().collect();
        specialize_edb(&p, &edb);
    }
}
