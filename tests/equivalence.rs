//! Theorem 3.4 (Soundness and Completeness), empirically: a goal message is
//! generable in some instance under concrete RA iff it is generable in the
//! simplified semantics.
//!
//! * **Completeness** — if the bounded concrete explorer finds the goal in
//!   *any* tested instance, the simplified engine must report `Unsafe`.
//! * **Soundness** — if the simplified engine reports `Unsafe`, some
//!   concrete instance must exhibit the goal; the §4.3 cost bound from the
//!   witness's dependency graph tells us how many `env` threads suffice.
//!
//! Both directions are exercised on hand-picked corner systems and on a
//! pseudo-random family of small programs.

use parra_program::builder::SystemBuilder;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra_simplified::state::Budget;

const GOAL_VAL: Val = Val(1);

/// The verdicts of the two engines for the goal message `(goal_var, 1)`.
struct Verdicts {
    simplified: ReachOutcome,
    /// Smallest tested `n_env` whose bounded concrete exploration reaches
    /// the goal, if any.
    concrete_hit: Option<usize>,
    /// Whether every tested concrete instance was exhausted (verdicts are
    /// exact, not bound-limited).
    concrete_exact: bool,
    cost_bound: Option<u64>,
}

fn run_both(sys: &ParamSystem, goal: VarId, max_env: usize) -> Verdicts {
    let budget = Budget::exact(sys).expect("test systems have loop-free dis");
    let engine = Reachability::new(sys.clone(), budget.clone(), ReachLimits::default())
        .expect("env is CAS-free");
    let report = engine.run(SimpTarget::MessageGenerated(goal, GOAL_VAL));
    assert_ne!(
        report.outcome,
        ReachOutcome::Truncated,
        "simplified search must be exhaustive on test systems"
    );
    let cost_bound = report.witness.as_ref().map(|w| {
        let g = DepGraph::build(sys, &budget, w);
        let node = g
            .find_message(goal, GOAL_VAL)
            .expect("goal node in witness graph");
        cost_of_graph(&g, node)
    });

    let mut concrete_hit = None;
    let mut concrete_exact = true;
    for n_env in 0..=max_env {
        let limits = ExploreLimits {
            max_depth: 40,
            max_states: 400_000,
        };
        let rep = Explorer::new(Instance::new(sys.clone(), n_env), limits)
            .run(Target::MessageGenerated(goal, GOAL_VAL));
        match rep.outcome {
            ExploreOutcome::Unsafe => {
                concrete_hit = Some(n_env);
                break;
            }
            ExploreOutcome::SafeExhausted => {}
            ExploreOutcome::SafeWithinBounds => concrete_exact = false,
            // These runs are ungoverned; an interruption would be a bug.
            ExploreOutcome::Interrupted(r) => panic!("ungoverned explorer interrupted: {r}"),
        }
    }
    Verdicts {
        simplified: report.outcome,
        concrete_hit,
        concrete_exact,
        cost_bound,
    }
}

fn check_agreement(sys: &ParamSystem, goal: VarId, max_env: usize, label: &str) {
    let v = run_both(sys, goal, max_env);
    match (v.simplified, v.concrete_hit) {
        (ReachOutcome::Unsafe, Some(_)) => {}
        (ReachOutcome::Safe, None) => {}
        (ReachOutcome::Safe, Some(n)) => panic!(
            "{label}: COMPLETENESS violation — concrete instance with {n} env \
             threads generates the goal but the simplified semantics says Safe\n\
             system:\n{}",
            parra_program::pretty::system_to_string(sys)
        ),
        (ReachOutcome::Unsafe, None) => {
            // Soundness: the goal should be concretely generable. Our
            // concrete search is bounded, so only report a hard failure
            // when all tested instances were fully exhausted and the cost
            // bound says the tested instance sizes suffice.
            let enough_threads = v.cost_bound.map(|c| c <= max_env as u64).unwrap_or(false);
            if v.concrete_exact && enough_threads {
                panic!(
                    "{label}: SOUNDNESS violation — simplified semantics says \
                     Unsafe (cost bound {:?}) but no concrete instance up to \
                     {max_env} env threads generates the goal\nsystem:\n{}",
                    v.cost_bound,
                    parra_program::pretty::system_to_string(sys)
                );
            }
        }
        (ReachOutcome::Truncated, _) => unreachable!(),
        (ReachOutcome::Interrupted(r), _) => {
            panic!("{label}: ungoverned simplified search interrupted: {r}")
        }
    }
}

// ---------------------------------------------------------------------
// Hand-picked corner systems
// ---------------------------------------------------------------------

/// env handshake: dis y:=1 → env reads it and writes x:=1 → dis reads x
/// and writes the goal.
#[test]
fn handshake_agrees() {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let goal = b.var("goal");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1).store(x, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.store(y, 1).load(s, x).assume_eq(s, 1).store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "handshake");
}

/// Coherence: after dis sees x=1 (written after y=1 by one env thread),
/// y=0 is unreadable — goal must be unreachable in both semantics.
#[test]
fn coherence_agrees() {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let goal = b.var("goal");
    let mut env = b.program("env");
    env.store(y, 1).store(x, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let rx = d.reg("rx");
    let ry = d.reg("ry");
    d.load(rx, x)
        .assume_eq(rx, 1)
        .load(ry, y)
        .assume_eq(ry, 0)
        .store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "coherence");
}

/// The same shape but with the two writes in *different* env threads:
/// now the stale read is allowed.
#[test]
fn unordered_writes_agree() {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let goal = b.var("goal");
    let mut env = b.program("env");
    let which = env.reg("w");
    env.choice(
        |p| {
            p.store(y, 1);
        },
        |p| {
            p.store(x, 1);
        },
    );
    let _ = which;
    let env = env.finish();
    let mut d = b.program("d");
    let rx = d.reg("rx");
    let ry = d.reg("ry");
    d.load(rx, x)
        .assume_eq(rx, 1)
        .load(ry, y)
        .assume_eq(ry, 0)
        .store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "unordered-writes");
}

/// CAS interplay: dis CAS on the initial message plus an env message the
/// dis thread must still observe afterwards.
#[test]
fn cas_with_env_messages_agrees() {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let goal = b.var("goal");
    let mut env = b.program("env");
    env.store(x, 2);
    let env = env.finish();
    let mut d = b.program("d");
    let r = d.reg("r");
    d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "cas-env");
}

/// Two dis threads CAS the same initial message: only one can win.
#[test]
fn cas_mutual_exclusion_agrees() {
    let mut b = SystemBuilder::new(3);
    let lock = b.var("lock");
    let flag = b.var("flag");
    let goal = b.var("goal");
    let env = {
        let mut p = b.program("env");
        p.skip();
        p.finish()
    };
    let mut d1 = b.program("d1");
    d1.cas(lock, 0, 1).store(flag, 1);
    let d1 = d1.finish();
    let mut d2 = b.program("d2");
    let r = d2.reg("r");
    d2.cas(lock, 0, 2)
        .load(r, flag)
        .assume_eq(r, 1)
        .store(goal, 1);
    let d2 = d2.finish();
    let sys = b.build(env, vec![d1, d2]);
    // d2's CAS and d1's CAS both target slot 1 from the init message: only
    // one succeeds, so (goal, 1) is unreachable.
    check_agreement(&sys, goal, 2, "cas-mutex");
}

/// env messages are re-readable (Infinite Supply): dis reads x = 1 more
/// often than a single env thread stores it.
#[test]
fn rereads_agree() {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let goal = b.var("goal");
    let mut env = b.program("env");
    env.store(x, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let r = d.reg("r");
    for _ in 0..3 {
        d.load(r, x).assume_eq(r, 1);
    }
    d.store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "rereads");
}

/// env-to-env communication chains.
#[test]
fn env_chain_agrees() {
    let mut b = SystemBuilder::new(2);
    let a = b.var("a");
    let c = b.var("c");
    let goal = b.var("goal");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.choice(
        |p| {
            p.store(a, 1);
        },
        |p| {
            p.load(r, a);
            p.assume_eq(r, 1);
            p.store(c, 1);
        },
    );
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.load(s, c).assume_eq(s, 1).store(goal, 1);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    check_agreement(&sys, goal, 3, "env-chain");
}

// ---------------------------------------------------------------------
// Pseudo-random small systems (thin driver over parra-fuzz)
// ---------------------------------------------------------------------

use parra_fuzz::gen::{GenConfig, SystemGen};
use parra_fuzz::oracle::{Equivalence, Oracle, OracleOutcome};

/// Runs the Theorem 3.4 oracle over `n` seeds of the family `cfg`. The
/// oracle's preconditions (loop-free dis, CAS-free env, non-truncated
/// search) hold for every family used here, so a `Skip` is a test bug and
/// fails loudly.
fn sweep(cfg: GenConfig, n: u64, label: &str) {
    let gen = SystemGen::new(cfg);
    let oracle = Equivalence;
    for seed in 0..n {
        let case = gen.case(seed);
        match oracle.check(&case.sys) {
            OracleOutcome::Pass => {}
            OracleOutcome::Skip(why) => {
                panic!("{label}-{seed}: oracle skipped ({why}) — family out of spec")
            }
            OracleOutcome::Fail(msg) => panic!(
                "{label}-{seed}: {msg}\nsystem:\n{}",
                parra_program::pretty::system_to_string(&case.sys)
            ),
        }
    }
}

#[test]
fn random_cas_free_systems_agree() {
    sweep(
        GenConfig {
            dis_cas: false,
            ..GenConfig::equivalence()
        },
        60,
        "random-nocas",
    );
}

#[test]
fn random_cas_systems_agree() {
    sweep(GenConfig::equivalence(), 60, "random-cas");
}

/// Two dis threads over the boolean domain.
#[test]
fn random_two_dis_systems_agree() {
    sweep(
        GenConfig {
            dom: 2,
            n_dis: 2,
            dis_len: 2,
            ..GenConfig::equivalence()
        },
        40,
        "random-2dis",
    );
}
