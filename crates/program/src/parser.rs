//! A concrete text syntax for parameterized systems.
//!
//! The grammar (line comments `// …` allowed everywhere):
//!
//! ```text
//! system  := "system" "{" "dom" NUM ";" ("vars" idents ";")? block* "}"
//! block   := ("env" | "dis") IDENT "{" ("regs" idents ";")? stmt* "}"
//! stmt    := "skip" ";"
//!          | "assume" expr ";"
//!          | "assert" "false" ";"
//!          | "await" IDENT "==" NUM ";"          // wait loop, remodelled
//!          | "cas" "(" IDENT "," expr "," expr ")" ";"
//!          | IDENT ":=" expr ";"                 // store or assignment
//!          | IDENT "<-" IDENT ";"                // load
//!          | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
//!          | "while" expr "{" stmt* "}"
//!          | "loop" "{" stmt* "}"                // c*
//!          | "choice" "{" stmt* "}" ("or" "{" stmt* "}")+
//! expr    := usual precedence: "||", "&&", comparisons, "+" "-", "*", "!"
//! ```
//!
//! `IDENT := expr` is a register assignment when `IDENT` is a declared
//! register and a store when it is a shared variable; declaring the same
//! name as both is rejected.
//!
//! `await x == v` is sugar for the paper's wait-loop remodelling: a load
//! into a scratch register followed by `assume` (Section 1 discusses why
//! this preserves safety for the `barrier`/`peterson-ra-bratosz`
//! benchmarks).

use crate::expr::{Binop, Expr};
use crate::ident::{RegId, SymbolTable, VarId};
use crate::stmt::Com;
use crate::system::{ParamSystem, Program};
use crate::value::Dom;
use std::fmt;

/// A parse error with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a full `system { … }` declaration.
///
/// # Errors
///
/// Returns a [`ParseError`] on any lexical or syntactic problem, including
/// references to undeclared variables/registers.
pub fn parse_system(input: &str) -> Result<ParamSystem, ParseError> {
    Parser::new(input)?.system()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u32),
    // punctuation / operators
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Assign, // :=
    Arrow,  // <-
    EqEq,
    NeEq,
    Le,
    Ge,
    Lt,
    Gt,
    Plus,
    Minus,
    Star,
    Bang,
    AndAnd,
    OrOr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "`{n}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Arrow => write!(f, "`<-`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NeEq => write!(f, "`!=`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexed {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(input: &str) -> Result<Vec<Lexed>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Lexed {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = bytes.get(i + 1).map(|&b| b as char);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            ':' if next == Some('=') => push!(Tok::Assign, 2),
            '<' if next == Some('-') => push!(Tok::Arrow, 2),
            '<' if next == Some('=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if next == Some('=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '=' if next == Some('=') => push!(Tok::EqEq, 2),
            '!' if next == Some('=') => push!(Tok::NeEq, 2),
            '!' => push!(Tok::Bang, 1),
            '&' if next == Some('&') => push!(Tok::AndAnd, 2),
            '|' if next == Some('|') => push!(Tok::OrOr, 2),
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n: u32 = text.parse().map_err(|_| ParseError {
                    line,
                    col,
                    message: format!("number `{text}` out of range"),
                })?;
                out.push(Lexed {
                    tok: Tok::Num(n),
                    line,
                    col,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                out.push(Lexed {
                    tok: Tok::Ident(text.to_owned()),
                    line,
                    col,
                });
                col += i - start;
            }
            other => {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Lexed {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    vars: SymbolTable,
    /// Register table of the program currently being parsed.
    regs: SymbolTable,
    await_count: u32,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
            vars: SymbolTable::new(),
            regs: SymbolTable::new(),
            await_count: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        (self.toks[self.pos].line, self.toks[self.pos].col)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn num(&mut self) -> Result<u32, ParseError> {
        match *self.peek() {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => Err(self.error(format!("expected number, found {other}"))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            names.push(self.ident()?);
        }
        Ok(names)
    }

    fn system(&mut self) -> Result<ParamSystem, ParseError> {
        self.keyword("system")?;
        self.expect(Tok::LBrace)?;
        self.keyword("dom")?;
        let dom_size = self.num()?;
        if dom_size == 0 {
            return Err(self.error("domain size must be positive"));
        }
        self.expect(Tok::Semi)?;
        if self.at_keyword("vars") {
            self.bump();
            for name in self.ident_list()? {
                self.vars.intern(&name);
            }
            self.expect(Tok::Semi)?;
        }
        let mut env: Option<Program> = None;
        let mut dis: Vec<Program> = Vec::new();
        while *self.peek() != Tok::RBrace {
            if self.at_keyword("env") {
                self.bump();
                let p = self.program_block()?;
                if env.replace(p).is_some() {
                    return Err(self.error("duplicate `env` block"));
                }
            } else if self.at_keyword("dis") {
                self.bump();
                dis.push(self.program_block()?);
            } else {
                return Err(self.error(format!(
                    "expected `env`, `dis`, or `}}`, found {}",
                    self.peek()
                )));
            }
        }
        self.expect(Tok::RBrace)?;
        let env = env.ok_or_else(|| self.error("system has no `env` block"))?;
        self.expect(Tok::Eof)?;
        Ok(ParamSystem::new(
            Dom::new(dom_size),
            std::mem::take(&mut self.vars),
            env,
            dis,
        ))
    }

    fn program_block(&mut self) -> Result<Program, ParseError> {
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        self.regs = SymbolTable::new();
        self.await_count = 0;
        if self.at_keyword("regs") {
            self.bump();
            for r in self.ident_list()? {
                if self.vars.lookup(&r).is_some() {
                    return Err(self.error(format!(
                        "`{r}` is declared both as a shared variable and a register"
                    )));
                }
                self.regs.intern(&r);
            }
            self.expect(Tok::Semi)?;
        }
        let body = self.stmts_until_rbrace()?;
        self.expect(Tok::RBrace)?;
        Ok(Program::new(name, std::mem::take(&mut self.regs), body))
    }

    fn stmts_until_rbrace(&mut self) -> Result<Com, ParseError> {
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        Ok(Com::seq(stmts))
    }

    fn braced_stmts(&mut self) -> Result<Com, ParseError> {
        self.expect(Tok::LBrace)?;
        let c = self.stmts_until_rbrace()?;
        self.expect(Tok::RBrace)?;
        Ok(c)
    }

    fn lookup_var(&self, name: &str) -> Option<VarId> {
        self.vars.lookup(name).map(VarId)
    }

    fn lookup_reg(&self, name: &str) -> Option<RegId> {
        self.regs.lookup(name).map(RegId)
    }

    fn stmt(&mut self) -> Result<Com, ParseError> {
        if self.at_keyword("skip") {
            self.bump();
            self.expect(Tok::Semi)?;
            return Ok(Com::Skip);
        }
        if self.at_keyword("assume") {
            self.bump();
            let e = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Com::Assume(e));
        }
        if self.at_keyword("assert") {
            self.bump();
            self.keyword("false")?;
            self.expect(Tok::Semi)?;
            return Ok(Com::AssertFalse);
        }
        if self.at_keyword("await") {
            self.bump();
            let var_name = self.ident()?;
            let x = self
                .lookup_var(&var_name)
                .ok_or_else(|| self.error(format!("undeclared shared variable `{var_name}`")))?;
            self.expect(Tok::EqEq)?;
            let v = self.num()?;
            self.expect(Tok::Semi)?;
            let scratch = RegId(self.regs.intern(&format!("$await{}", self.await_count)));
            self.await_count += 1;
            return Ok(Com::await_value(x, scratch, Expr::val(v)));
        }
        if self.at_keyword("cas") {
            self.bump();
            self.expect(Tok::LParen)?;
            let var_name = self.ident()?;
            let x = self
                .lookup_var(&var_name)
                .ok_or_else(|| self.error(format!("undeclared shared variable `{var_name}`")))?;
            self.expect(Tok::Comma)?;
            let e1 = self.expr()?;
            self.expect(Tok::Comma)?;
            let e2 = self.expr()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(Com::Cas(x, e1, e2));
        }
        if self.at_keyword("if") {
            self.bump();
            let cond = self.expr()?;
            let then = self.braced_stmts()?;
            if self.at_keyword("else") {
                self.bump();
                let els = self.braced_stmts()?;
                return Ok(Com::if_then_else(cond, then, els));
            }
            return Ok(Com::if_then(cond, then));
        }
        if self.at_keyword("while") {
            self.bump();
            let cond = self.expr()?;
            let body = self.braced_stmts()?;
            return Ok(Com::while_loop(cond, body));
        }
        if self.at_keyword("loop") {
            self.bump();
            let body = self.braced_stmts()?;
            return Ok(Com::star(body));
        }
        if self.at_keyword("choice") {
            self.bump();
            let mut alts = vec![self.braced_stmts()?];
            if !self.at_keyword("or") {
                return Err(self.error("`choice` needs at least one `or` branch"));
            }
            while self.at_keyword("or") {
                self.bump();
                alts.push(self.braced_stmts()?);
            }
            return Ok(Com::choice(alts));
        }
        // IDENT := expr  |  IDENT <- IDENT
        let name = self.ident()?;
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                if let Some(r) = self.lookup_reg(&name) {
                    Ok(Com::Assign(r, e))
                } else if let Some(x) = self.lookup_var(&name) {
                    Ok(Com::Store(x, e))
                } else {
                    Err(self.error(format!("`{name}` is neither a register nor a variable")))
                }
            }
            Tok::Arrow => {
                self.bump();
                let src = self.ident()?;
                self.expect(Tok::Semi)?;
                let r = self
                    .lookup_reg(&name)
                    .ok_or_else(|| self.error(format!("undeclared register `{name}`")))?;
                let x = self
                    .lookup_var(&src)
                    .ok_or_else(|| self.error(format!("undeclared shared variable `{src}`")))?;
                Ok(Com::Load(r, x))
            }
            other => Err(self.error(format!("expected `:=` or `<-`, found {other}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_and()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            e = Expr::binop(Binop::Or, e, self.expr_and()?);
        }
        Ok(e)
    }

    fn expr_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_cmp()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            e = Expr::binop(Binop::And, e, self.expr_cmp()?);
        }
        Ok(e)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Tok::EqEq => Binop::Eq,
            Tok::NeEq => Binop::Ne,
            Tok::Lt => Binop::Lt,
            Tok::Le => Binop::Le,
            Tok::Gt => Binop::Gt,
            Tok::Ge => Binop::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_add()?;
        Ok(Expr::binop(op, lhs, rhs))
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => Binop::Add,
                Tok::Minus => Binop::Sub,
                _ => return Ok(e),
            };
            self.bump();
            e = Expr::binop(op, e, self.expr_mul()?);
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_unary()?;
        while *self.peek() == Tok::Star {
            self.bump();
            e = Expr::binop(Binop::Mul, e, self.expr_unary()?);
        }
        Ok(e)
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Bang {
            self.bump();
            return Ok(self.expr_unary()?.not());
        }
        self.expr_atom()
    }

    fn expr_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::val(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "true" => {
                self.bump();
                Ok(Expr::val(1))
            }
            Tok::Ident(name) if name == "false" => {
                self.bump();
                Ok(Expr::val(0))
            }
            Tok::Ident(name) => {
                self.bump();
                if let Some(r) = self.lookup_reg(&name) {
                    Ok(Expr::reg(r))
                } else if self.lookup_var(&name).is_some() {
                    Err(self.error(format!(
                        "shared variable `{name}` cannot appear in an expression; \
                         load it into a register first"
                    )))
                } else {
                    Err(self.error(format!("undeclared register `{name}`")))
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;

    const PRODUCER_CONSUMER: &str = r#"
        // Figure 1 of the paper, parameterized.
        system {
            dom 3;
            vars x, y;
            env producer {
                regs r;
                r <- y;
                assume r == 1;
                x := 1;
            }
            dis consumer {
                regs s;
                y := 1;
                s <- x;
                assume s == 1;
                assert false;
            }
        }
    "#;

    #[test]
    fn parses_producer_consumer() {
        let sys = parse_system(PRODUCER_CONSUMER).unwrap();
        assert_eq!(sys.dom.size(), 3);
        assert_eq!(sys.n_vars(), 2);
        assert_eq!(sys.env.name(), "producer");
        assert_eq!(sys.dis.len(), 1);
        assert!(sys.env.cfa().is_cas_free());
        assert!(sys.dis[0].cfa().has_assert());
    }

    #[test]
    fn structured_statements() {
        let sys = parse_system(
            r#"system {
                dom 4;
                vars x;
                env e {
                    regs r, s;
                    while r != 2 {
                        r <- x;
                        if r == 1 { x := 2; } else { skip; }
                    }
                    choice { s := 1; } or { s := 2; } or { s := 3; }
                    loop { x := 1; }
                }
            }"#,
        )
        .unwrap();
        assert!(!sys.env.cfa().is_acyclic());
        assert_eq!(sys.env.n_regs(), 2);
    }

    #[test]
    fn await_allocates_scratch_register() {
        let sys = parse_system(
            r#"system {
                dom 2;
                vars flag;
                env e {
                    await flag == 1;
                    await flag == 0;
                }
            }"#,
        )
        .unwrap();
        assert_eq!(sys.env.n_regs(), 2);
        assert!(sys.env.cfa().is_acyclic());
    }

    #[test]
    fn cas_statement() {
        let sys = parse_system(
            r#"system {
                dom 2;
                vars lock;
                env e { skip; }
                dis d {
                    cas(lock, 0, 1);
                }
            }"#,
        )
        .unwrap();
        assert!(!sys.dis[0].cfa().is_cas_free());
        assert!(sys.env.cfa().is_cas_free());
    }

    #[test]
    fn expression_precedence() {
        let sys = parse_system(
            r#"system {
                dom 8;
                vars x;
                env e {
                    regs a, b;
                    assume a + b * 2 == 5 && !(a == b) || b >= 1;
                }
            }"#,
        )
        .unwrap();
        // Spot-check via pretty-printing (which emits minimal parens).
        let names = pretty::Names::for_program(&sys.vars, &sys.env);
        let text = pretty::com_to_string(sys.env.com(), names);
        assert!(text.contains("a + b * 2 == 5 && !(a == b) || b >= 1"));
    }

    #[test]
    fn store_vs_assign_disambiguation() {
        let sys = parse_system(
            r#"system {
                dom 2;
                vars x;
                env e {
                    regs r;
                    r := 1;   // assignment
                    x := 1;   // store
                }
            }"#,
        )
        .unwrap();
        match sys.env.com() {
            Com::Seq(a, b) => {
                assert!(matches!(**a, Com::Assign(..)));
                assert!(matches!(**b, Com::Store(..)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_system("system {\n  dom 0;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("positive"));

        let err = parse_system("system { dom 2; env e { r <- x; } }").unwrap_err();
        assert!(err.message.contains("undeclared register `r`"));
    }

    #[test]
    fn variable_in_expression_rejected() {
        let err = parse_system("system { dom 2; vars x; env e { assume x == 1; } }").unwrap_err();
        assert!(err.message.contains("load it into a register"));
    }

    #[test]
    fn name_collision_rejected() {
        let err = parse_system("system { dom 2; vars x; env e { regs x; skip; } }").unwrap_err();
        assert!(err.message.contains("both"));
    }

    #[test]
    fn missing_env_rejected() {
        let err = parse_system("system { dom 2; }").unwrap_err();
        assert!(err.message.contains("no `env` block"));
    }

    #[test]
    fn choice_requires_or() {
        let err = parse_system("system { dom 2; env e { choice { skip; } } }").unwrap_err();
        assert!(err.message.contains("`or`"));
    }

    #[test]
    fn pretty_parse_roundtrip_is_stable() {
        let sys = parse_system(PRODUCER_CONSUMER).unwrap();
        let printed = pretty::system_to_string(&sys);
        let reparsed = parse_system(&printed).unwrap();
        assert_eq!(pretty::system_to_string(&reparsed), printed);
        assert_eq!(reparsed.dom, sys.dom);
        assert_eq!(reparsed.env.com(), sys.env.com());
    }
}
