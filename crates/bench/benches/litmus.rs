//! B1: verification time for every benchmark of the suite under the
//! simplified-semantics engine.

use criterion::{criterion_group, criterion_main, Criterion};
use parra_core::verify::{Engine, Verifier, VerifierOptions};

fn bench_litmus(c: &mut Criterion) {
    let mut group = c.benchmark_group("litmus");
    group.sample_size(10);
    for bench in parra_litmus::all() {
        let verifier =
            Verifier::new(&bench.system, VerifierOptions::default()).unwrap();
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let r = verifier.run(Engine::SimplifiedReach);
                std::hint::black_box(r.verdict)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_litmus);
criterion_main!(benches);
