//! The `parra` command-line verifier.
//!
//! ```text
//! parra classify <file.ra>
//! parra verify   <file.ra> [--engine simplified|datalog|concrete]
//!                          [--unroll N] [--all-engines] [--concretize]
//! parra print    <file.ra>
//! ```
//!
//! Input files use the `system { … }` syntax (see the README or
//! `examples/`). Exit code 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 64+ =
//! usage/input errors.

use parra::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("parra: {msg}");
            ExitCode::from(64)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "classify" => classify(rest),
        "verify" => verify(rest),
        "print" => print_system(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  parra classify <file.ra>\n  parra verify <file.ra> \
     [--engine simplified|datalog|concrete] [--unroll N] [--all-engines] \
     [--concretize]\n  parra print <file.ra>"
        .to_owned()
}

fn load(args: &[String]) -> Result<ParamSystem, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or("missing input file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn classify(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    let class = SystemClass::of(&sys);
    println!("class      : {class}");
    println!("complexity : {}", class.complexity());
    println!(
        "supported  : {}",
        if class.is_decidable_fragment() {
            "yes (decided exactly)"
        } else if class.env.nocas {
            "with --unroll N (bounded model checking of dis loops)"
        } else {
            "no (undecidable, Theorem 1.1)"
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let options = VerifierOptions {
        unroll_dis: unroll,
        ..Default::default()
    };
    let verifier = Verifier::new(&sys, options).map_err(|e| e.to_string())?;

    let engines: Vec<Engine> = if args.iter().any(|a| a == "--all-engines") {
        vec![
            Engine::SimplifiedReach,
            Engine::CacheDatalog,
            Engine::BoundedConcrete,
        ]
    } else {
        let engine = match flag_value(args, "--engine").as_deref() {
            None | Some("simplified") => Engine::SimplifiedReach,
            Some("datalog") => Engine::CacheDatalog,
            Some("concrete") => Engine::BoundedConcrete,
            Some(other) => return Err(format!("unknown engine `{other}`")),
        };
        vec![engine]
    };

    let mut final_verdict = Verdict::Unknown;
    for engine in engines {
        let result = verifier.run(engine);
        println!(
            "[{engine}] {} ({:.2?}, {} states)",
            result.verdict, result.stats.duration, result.stats.states
        );
        if let Some(bound) = result.env_thread_bound {
            println!("  env threads sufficient for the violation: {bound}");
        }
        for line in &result.witness_lines {
            println!("  witness: {line}");
        }
        for note in &result.notes {
            println!("  note: {note}");
        }
        if args.iter().any(|a| a == "--concretize") && result.verdict == Verdict::Unsafe {
            match verifier.concretize(&result, 6) {
                Some(w) => {
                    println!("  concrete interleaving ({} env threads):", w.n_env);
                    for step in &w.steps {
                        println!("    {step}");
                    }
                }
                None => println!(
                    "  (no concrete interleaving found within 6 env threads \
                     and default depth)"
                ),
            }
        }
        final_verdict = result.verdict;
    }
    Ok(match final_verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Unsafe => ExitCode::from(1),
        Verdict::Unknown => ExitCode::from(2),
    })
}

fn print_system(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    print!("{}", parra::program::pretty::system_to_string(&sys));
    Ok(ExitCode::SUCCESS)
}
