//! A prepared-[`Verifier`] cache for long-lived hosts.
//!
//! Preparing a verifier — classify, unroll, goal-transform, timestamp
//! budget — is pure in the system text and the verdict-relevant options,
//! so a host that sees the same program twice can reuse the prepared
//! verifier instead of re-paying the `plan` phase. [`VerifierCache`] keys
//! on the *canonical* pretty-printed system (so formatting differences in
//! the source text still hit) combined with
//! [`VerifierOptions::fingerprint`], using the same double-FNV-1a 128-bit
//! content hash the campaign store uses for its experiment keys.
//!
//! The cache stores each prepared verifier pristine; lookups hand out
//! [`Verifier::rescoped`] clones carrying the request's own options and
//! recorder. The shared `plan`-phase attribution flag travels with the
//! clones, so across a cache entry's whole lifetime exactly one report —
//! the first engine run of the preparing (cold) request — claims the
//! preparation time, and every warm request's phase table shows plan = 0.

use crate::verify::{Verifier, VerifierError, VerifierOptions};
use parra_obs::Recorder;
use parra_program::pretty::system_to_string;
use parra_program::system::ParamSystem;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// The same FNV-1a parameters as the campaign store's content keys
// (crates/campaign/src/hash.rs): two independent 64-bit offset bases over
// length-framed parts give a 128-bit key with no cross-part ambiguity.
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(offset: u64, parts: &[&[u8]]) -> u64 {
    let mut h = offset;
    for part in parts {
        for b in part.len().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The cache key for one prepared verifier: 32 hex digits over the
/// canonical system text and the verdict-relevant options fingerprint.
fn entry_key(canonical: &str, options_fp: &str) -> String {
    let parts: [&[u8]; 2] = [canonical.as_bytes(), options_fp.as_bytes()];
    format!(
        "{:016x}{:016x}",
        fnv1a(FNV_OFFSET_A, &parts),
        fnv1a(FNV_OFFSET_B, &parts)
    )
}

/// A thread-safe cache of prepared verifiers, keyed on canonical system
/// text + options fingerprint. See the module docs for the warm-path
/// contract.
#[derive(Default)]
pub struct VerifierCache {
    entries: Mutex<HashMap<String, Verifier>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerifierCache {
    /// An empty cache.
    pub fn new() -> VerifierCache {
        VerifierCache::default()
    }

    /// Returns a request-scoped verifier for `sys` under `options`,
    /// preparing (and caching) one on a miss. The boolean is `true` on a
    /// cache hit — the returned verifier then skipped preparation and
    /// carries no `plan` phase.
    ///
    /// The recorder is attached *after* the cache decision: a cold
    /// request records its preparation phases under `rec` as usual, a
    /// warm request records nothing for preparation because none ran.
    ///
    /// # Errors
    ///
    /// Propagates [`VerifierError`] from preparation; errors are not
    /// cached (they are cheap to re-derive and carry no prepared state).
    pub fn get_or_prepare(
        &self,
        sys: &ParamSystem,
        options: VerifierOptions,
        rec: Recorder,
    ) -> Result<(Verifier, bool), VerifierError> {
        let key = entry_key(&system_to_string(sys), &options.fingerprint());
        if let Some(prepared) = self
            .entries
            .lock()
            .expect("verifier cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((prepared.rescoped(options, rec), true));
        }
        // Prepare outside the lock: preparation can be slow and other
        // requests (other keys) should not queue behind it. Two racing
        // misses on the same key both prepare; the second insert wins and
        // both results are equivalent (preparation is deterministic).
        let prepared = Verifier::new_with_recorder(sys, options.clone(), rec.clone())?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let scoped = prepared.rescoped(options, rec);
        self.entries
            .lock()
            .expect("verifier cache poisoned")
            .insert(key, prepared);
        Ok((scoped, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (preparations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of prepared verifiers currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("verifier cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for VerifierCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifierCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::EngineId;
    use parra_program::builder::SystemBuilder;

    fn handshake(safe: bool) -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        if !safe {
            d.store(y, 1);
        }
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn warm_lookup_reuses_preparation_and_skips_the_plan_phase() {
        let cache = VerifierCache::new();
        let sys = handshake(false);
        let (cold, was_cached) = cache
            .get_or_prepare(&sys, VerifierOptions::default(), Recorder::disabled())
            .expect("prepare");
        assert!(!was_cached);
        assert_eq!(cache.misses(), 1);
        let cold_result = cold.run(EngineId::SimplifiedReach);

        let (warm, was_cached) = cache
            .get_or_prepare(&sys, VerifierOptions::default(), Recorder::disabled())
            .expect("lookup");
        assert!(was_cached);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        let warm_result = warm.run(EngineId::SimplifiedReach);

        assert_eq!(cold_result.verdict, warm_result.verdict);
        assert_eq!(cold_result.notes, warm_result.notes);
        // The preparation time belongs to the cold request's first run;
        // the warm report must show no plan phase at all.
        assert!(
            !warm_result.report.phases.iter().any(|(n, _)| n == "plan"),
            "warm run re-claimed the plan phase: {:?}",
            warm_result.report.phases
        );
    }

    #[test]
    fn formatting_differences_share_an_entry_but_options_do_not() {
        let cache = VerifierCache::new();
        let sys = handshake(true);
        cache
            .get_or_prepare(&sys, VerifierOptions::default(), Recorder::disabled())
            .expect("prepare");
        // Same system again: the canonical text, not the builder
        // identity, is the key.
        let again = handshake(true);
        let (_, was_cached) = cache
            .get_or_prepare(&again, VerifierOptions::default(), Recorder::disabled())
            .expect("lookup");
        assert!(was_cached);
        // A verdict-relevant option change is a different experiment.
        let widened = VerifierOptions {
            concrete_max_env: 9,
            ..VerifierOptions::default()
        };
        let (_, was_cached) = cache
            .get_or_prepare(&sys, widened, Recorder::disabled())
            .expect("prepare");
        assert!(!was_cached);
        assert_eq!(cache.len(), 2);
        // A scheduling knob (threads/timeout) is not.
        let rescheduled = VerifierOptions {
            threads: 3,
            timeout: Some(std::time::Duration::from_secs(30)),
            ..VerifierOptions::default()
        };
        let (_, was_cached) = cache
            .get_or_prepare(&sys, rescheduled, Recorder::disabled())
            .expect("lookup");
        assert!(was_cached);
    }

    #[test]
    fn preparation_errors_are_propagated_not_cached() {
        let cache = VerifierCache::new();
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        // A dis loop without an unroll bound: NeedsUnrolling.
        let mut d = b.program("d");
        let r = d.reg("r");
        d.star(|p| {
            p.load(r, x);
        });
        d.assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let err = cache
            .get_or_prepare(&sys, VerifierOptions::default(), Recorder::disabled())
            .expect_err("loopy dis without unroll must be rejected");
        assert_eq!(err, VerifierError::NeedsUnrolling);
        assert!(cache.is_empty());
        // With the bound the same text prepares fine.
        let opts = VerifierOptions {
            unroll_dis: Some(2),
            ..VerifierOptions::default()
        };
        let (_, was_cached) = cache
            .get_or_prepare(&sys, opts, Recorder::disabled())
            .expect("prepare with unroll");
        assert!(!was_cached);
    }
}
