//! The on-disk experiment store.
//!
//! A store is a plain directory:
//!
//! ```text
//! store/
//!   manifest.json    # campaign identity: engine, options, shard, inputs
//!   results.jsonl    # append-only per-input records, one JSON object per line
//! ```
//!
//! `results.jsonl` is the checkpoint: a record is appended (and flushed)
//! the moment its input finishes, so a killed sweep loses at most the
//! input in flight. Re-runs append rather than rewrite; readers merge
//! **last-wins per key**, which makes append both the checkpoint and the
//! update primitive. Each record keeps its deterministic fields first
//! and wall-clock measurements in a trailing `volatile` object, so two
//! stores are comparable byte-for-byte via [`Store::canonical_results`]
//! (merge, sort by key, drop `volatile`) — the contract the
//! crash-injection resume test checks.

use parra_obs::json::{self, ObjWriter, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The store format version written to (and required in) the manifest.
pub const STORE_VERSION: u64 = 1;

/// The campaign's identity and input list, persisted as `manifest.json`.
///
/// The manifest carries everything `campaign resume` needs to rebuild
/// the run without the original command line: the engine selection
/// label, the raw option values (not just their fingerprint — a
/// fingerprint cannot be inverted), the shard assignment, and the input
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Engine-selection label: one engine's name, `all-engines`, or
    /// `race`. Part of every record's content key.
    pub engine: String,
    /// `VerifierOptions::fingerprint()` of the campaign's options.
    pub options_fp: String,
    /// `--unroll` depth, when given.
    pub unroll: Option<u64>,
    /// Per-input wall-clock budget in microseconds, when given.
    pub timeout_us: Option<u64>,
    /// Per-input memory budget in bytes, when given.
    pub memory_budget: Option<u64>,
    /// `--shard K/N` assignment (1-based `K`), when this store holds one
    /// shard of a fanned-out sweep.
    pub shard: Option<(u64, u64)>,
    /// Input paths, in the order they were given.
    pub inputs: Vec<String>,
}

impl Manifest {
    /// Renders the manifest as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.num_field("version", STORE_VERSION);
        w.str_field("engine", &self.engine);
        w.str_field("options_fp", &self.options_fp);
        match self.unroll {
            Some(n) => w.num_field("unroll", n),
            None => w.raw_field("unroll", "null"),
        }
        match self.timeout_us {
            Some(n) => w.num_field("timeout_us", n),
            None => w.raw_field("timeout_us", "null"),
        }
        match self.memory_budget {
            Some(n) => w.num_field("memory_budget", n),
            None => w.raw_field("memory_budget", "null"),
        }
        match self.shard {
            Some((k, n)) => {
                w.num_field("shard_k", k);
                w.num_field("shard_n", n);
            }
            None => {
                w.raw_field("shard_k", "null");
                w.raw_field("shard_n", "null");
            }
        }
        w.str_arr_field("inputs", &self.inputs);
        w.finish()
    }

    /// Parses a manifest, rejecting unknown store versions.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = json::parse(text.trim()).map_err(|e| format!("manifest: {e}"))?;
        match v.get("version").and_then(Value::as_u64) {
            Some(STORE_VERSION) => {}
            Some(other) => return Err(format!("manifest: unsupported store version {other}")),
            None => return Err("manifest: missing numeric `version`".into()),
        }
        let req_str = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest: missing string `{k}`"))
        };
        let opt_num = |k: &str| v.get(k).and_then(Value::as_u64);
        let inputs = v
            .get("inputs")
            .and_then(Value::as_arr)
            .ok_or("manifest: missing array `inputs`")?
            .iter()
            .filter_map(|x| x.as_str().map(str::to_string))
            .collect();
        let shard = match (opt_num("shard_k"), opt_num("shard_n")) {
            (Some(k), Some(n)) => Some((k, n)),
            _ => None,
        };
        Ok(Manifest {
            engine: req_str("engine")?,
            options_fp: req_str("options_fp")?,
            unroll: opt_num("unroll"),
            timeout_us: opt_num("timeout_us"),
            memory_budget: opt_num("memory_budget"),
            shard,
            inputs,
        })
    }
}

/// One per-input result record, one line of `results.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The content key (see [`crate::hash::content_key`]).
    pub key: String,
    /// The input path as given to the campaign (informational — the key,
    /// not the path, identifies the work unit).
    pub input: String,
    /// The engine-selection label the verdict came from.
    pub engine: String,
    /// The aggregate verdict string; `None` when the input errored
    /// (unreadable, unparseable, rejected, or a panicking engine).
    pub verdict: Option<String>,
    /// The interruption reason when the input ended undecided because a
    /// budget tripped (`deadline` / `memory` / `cancelled`). `None` for
    /// decisive verdicts — mirroring `parra batch` lines.
    pub interrupted: Option<String>,
    /// The error message, for inputs that never produced a verdict.
    pub error: Option<String>,
    /// Wall-clock duration of the verification in microseconds
    /// (volatile: exempt from the byte-identical store contract).
    pub duration_us: u64,
}

impl Record {
    /// Whether a re-run should keep this record as-is. Decisive verdicts
    /// and completed `Unknown` runs are kept (both are deterministic);
    /// interrupted and errored inputs are the resume frontier.
    pub fn is_settled(&self) -> bool {
        self.error.is_none() && self.interrupted.is_none() && self.verdict.is_some()
    }

    fn write_fields(&self, w: &mut ObjWriter) {
        w.str_field("key", &self.key);
        w.str_field("input", &self.input);
        w.str_field("engine", &self.engine);
        match &self.verdict {
            Some(s) => w.str_field("verdict", s),
            None => w.raw_field("verdict", "null"),
        }
        match &self.interrupted {
            Some(s) => w.str_field("interrupted", s),
            None => w.raw_field("interrupted", "null"),
        }
        match &self.error {
            Some(s) => w.str_field("error", s),
            None => w.raw_field("error", "null"),
        }
    }

    /// Renders the full record line, volatile section last.
    pub fn render_line(&self) -> String {
        let mut w = ObjWriter::new();
        self.write_fields(&mut w);
        let mut vol = ObjWriter::new();
        vol.num_field("duration_us", self.duration_us);
        w.raw_field("volatile", &vol.finish());
        w.finish()
    }

    /// Renders only the deterministic fields — the projection the
    /// byte-identical store comparisons use.
    pub fn deterministic_line(&self) -> String {
        let mut w = ObjWriter::new();
        self.write_fields(&mut w);
        w.finish()
    }

    /// Parses one `results.jsonl` line.
    pub fn parse_line(line: &str) -> Result<Record, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let req_str = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record: missing string `{k}`"))
        };
        let opt_str = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        Ok(Record {
            key: req_str("key")?,
            input: req_str("input")?,
            engine: req_str("engine")?,
            verdict: opt_str("verdict"),
            interrupted: opt_str("interrupted"),
            error: opt_str("error"),
            duration_us: v
                .get("volatile")
                .and_then(|vol| vol.get("duration_us"))
                .and_then(Value::as_u64)
                .unwrap_or(0),
        })
    }
}

/// An open experiment store.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    fn results_path(&self) -> PathBuf {
        self.dir.join("results.jsonl")
    }

    /// Creates a new store directory (parents included) and writes the
    /// manifest. Fails if the directory already holds a store.
    pub fn create(dir: &Path, manifest: &Manifest) -> Result<Store, String> {
        if Self::manifest_path(dir).exists() {
            return Err(format!(
                "store `{}` already exists (use resume, or a fresh directory)",
                dir.display()
            ));
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create store `{}`: {e}", dir.display()))?;
        let store = Store {
            dir: dir.to_path_buf(),
        };
        store.write_manifest(manifest)?;
        Ok(store)
    }

    /// Opens an existing store and reads its manifest.
    pub fn open(dir: &Path) -> Result<(Store, Manifest), String> {
        let text = std::fs::read_to_string(Self::manifest_path(dir))
            .map_err(|e| format!("cannot open store `{}`: {e}", dir.display()))?;
        let manifest = Manifest::from_json(&text)?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
            },
            manifest,
        ))
    }

    /// Opens the store if it exists — requiring the same engine
    /// selection and options fingerprint, since records keyed under
    /// different options must not share a store — or creates it. The
    /// manifest's input list and shard are refreshed to `manifest`'s on
    /// every open, so a warm re-run can add or drop inputs.
    pub fn open_or_create(dir: &Path, manifest: &Manifest) -> Result<Store, String> {
        if !Self::manifest_path(dir).exists() {
            return Store::create(dir, manifest);
        }
        let (store, existing) = Store::open(dir)?;
        if existing.engine != manifest.engine {
            return Err(format!(
                "store `{}` was built with engine `{}`, not `{}`; use a fresh store directory",
                dir.display(),
                existing.engine,
                manifest.engine
            ));
        }
        if existing.options_fp != manifest.options_fp {
            return Err(format!(
                "store `{}` was built with different verdict-relevant options \
                 (fingerprint `{}` vs `{}`); use a fresh store directory",
                dir.display(),
                existing.options_fp,
                manifest.options_fp
            ));
        }
        store.write_manifest(manifest)?;
        Ok(store)
    }

    /// (Re)writes the manifest.
    pub fn write_manifest(&self, manifest: &Manifest) -> Result<(), String> {
        std::fs::write(Self::manifest_path(&self.dir), manifest.to_json() + "\n")
            .map_err(|e| format!("cannot write manifest in `{}`: {e}", self.dir.display()))
    }

    /// Appends one record and flushes it to disk — the checkpoint.
    pub fn append(&self, record: &Record) -> Result<(), String> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.results_path())
            .map_err(|e| format!("cannot append to `{}`: {e}", self.results_path().display()))?;
        f.write_all((record.render_line() + "\n").as_bytes())
            .and_then(|()| f.flush())
            .and_then(|()| f.sync_data())
            .map_err(|e| format!("cannot append to `{}`: {e}", self.results_path().display()))
    }

    /// Every record, in append (chronological) order. A store with no
    /// `results.jsonl` yet is empty, not an error.
    pub fn records(&self) -> Result<Vec<Record>, String> {
        let path = self.results_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("cannot read `{}`: {e}", path.display())),
        };
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(
                Record::parse_line(line)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?,
            );
        }
        Ok(out)
    }

    /// Records merged last-wins per content key (the store's logical
    /// state: appends supersede earlier records for the same key).
    pub fn merged(&self) -> Result<BTreeMap<String, Record>, String> {
        let mut map = BTreeMap::new();
        for r in self.records()? {
            map.insert(r.key.clone(), r);
        }
        Ok(map)
    }

    /// Records merged last-wins per *input path* — the view `diff` and
    /// `status` use, so a re-keyed input (its content changed) is
    /// represented by its latest record only.
    pub fn by_input(&self) -> Result<BTreeMap<String, Record>, String> {
        let mut map = BTreeMap::new();
        for r in self.records()? {
            map.insert(r.input.clone(), r);
        }
        Ok(map)
    }

    /// The canonical deterministic rendering of the store's logical
    /// state: merged per key, sorted by key, `volatile` dropped. Two
    /// sweeps over the same inputs — interrupted + resumed or not,
    /// sharded or not, at any thread count — must agree on this text
    /// byte for byte.
    pub fn canonical_results(&self) -> Result<String, String> {
        let mut out = String::new();
        for r in self.merged()?.values() {
            out.push_str(&r.deterministic_line());
            out.push('\n');
        }
        Ok(out)
    }

    /// Writes a merged store at `dir`: `manifest` plus `records`
    /// rendered in key order. Used by `campaign status --merge-out` to
    /// fold shard stores into one.
    pub fn write_merged(
        dir: &Path,
        manifest: &Manifest,
        records: &BTreeMap<String, Record>,
    ) -> Result<Store, String> {
        let store = Store::create(dir, manifest)?;
        let mut text = String::new();
        for r in records.values() {
            text.push_str(&r.render_line());
            text.push('\n');
        }
        std::fs::write(store.results_path(), text)
            .map_err(|e| format!("cannot write `{}`: {e}", store.results_path().display()))?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            engine: "all-engines".into(),
            options_fp: "unroll=None;reach=1,2,3".into(),
            unroll: None,
            timeout_us: Some(5_000_000),
            memory_budget: None,
            shard: Some((1, 2)),
            inputs: vec!["a.ra".into(), "b.ra".into()],
        }
    }

    fn rec(key: &str, input: &str, verdict: Option<&str>, dur: u64) -> Record {
        Record {
            key: key.into(),
            input: input.into(),
            engine: "all-engines".into(),
            verdict: verdict.map(str::to_string),
            interrupted: None,
            error: if verdict.is_none() {
                Some("boom".into())
            } else {
                None
            },
            duration_us: dur,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        let mut unsharded = m.clone();
        unsharded.shard = None;
        unsharded.timeout_us = None;
        assert_eq!(
            Manifest::from_json(&unsharded.to_json()).unwrap(),
            unsharded
        );
    }

    #[test]
    fn record_round_trips_and_splits_volatile() {
        let r = rec("k1", "a.ra", Some("SAFE"), 42);
        assert_eq!(Record::parse_line(&r.render_line()).unwrap(), r);
        assert!(r
            .render_line()
            .contains("\"volatile\":{\"duration_us\":42}"));
        assert!(!r.deterministic_line().contains("volatile"));
        assert!(r.is_settled());
        assert!(!rec("k2", "b.ra", None, 1).is_settled());
        let interrupted = Record {
            interrupted: Some("deadline".into()),
            verdict: Some("UNKNOWN".into()),
            ..rec("k3", "c.ra", Some("UNKNOWN"), 1)
        };
        assert!(!interrupted.is_settled());
    }

    #[test]
    fn store_append_merge_and_canonical_text() {
        let dir = std::env::temp_dir().join(format!("parra-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::create(&dir, &sample_manifest()).unwrap();
        store
            .append(&rec("k2", "b.ra", Some("UNSAFE"), 10))
            .unwrap();
        store.append(&rec("k1", "a.ra", None, 5)).unwrap();
        // Re-run of a.ra supersedes the error record.
        store.append(&rec("k1", "a.ra", Some("SAFE"), 7)).unwrap();
        assert_eq!(store.records().unwrap().len(), 3);
        let merged = store.merged().unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged["k1"].verdict.as_deref(), Some("SAFE"));
        // Canonical text: sorted by key, no volatile, last-wins.
        let canon = store.canonical_results().unwrap();
        let lines: Vec<&str> = canon.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"key\":\"k1\"") && lines[0].contains("SAFE"));
        assert!(lines[1].contains("\"key\":\"k2\""));
        assert!(!canon.contains("duration_us"));
        // Reopen requires matching identity.
        let err = Store::open_or_create(
            &dir,
            &Manifest {
                engine: "race".into(),
                ..sample_manifest()
            },
        )
        .unwrap_err();
        assert!(err.contains("engine"));
        assert!(Store::open_or_create(&dir, &sample_manifest()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
