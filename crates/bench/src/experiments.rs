//! The experiments: one function per table/figure of the paper, each
//! returning a rendered report. `EXPERIMENTS.md` records their output.

use crate::table::Table;
use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_litmus::sync::producer_consumer;
use parra_litmus::Expected;
use parra_program::builder::SystemBuilder;
use parra_program::classify::SystemClass;
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_qbf::eval::evaluate;
use parra_qbf::gen;
use parra_qbf::reduce::reduce_to_purera;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::step::monotone_successors;
use parra_ra::{Instance, Trace};
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra_simplified::state::Budget;
use std::fmt::Write as _;
use std::time::Instant;

/// All experiment reports in `(id, report)` form.
pub fn all_reports() -> Vec<(&'static str, String)> {
    vec![
        ("T1: Table 1 — the complexity landscape", table1()),
        ("F1: Figure 1 — a concrete RA execution", figure1()),
        ("F3: Figure 3 — the simplified semantics, z > l", figure3()),
        ("F4: Figure 4 — two dependency graphs", figure4()),
        (
            "F5: Figure 5 — cost-annotated dependency graphs (§4.3)",
            figure5(),
        ),
        ("F6: Figure 6 — the TQBF reduction (Theorem 5.1)", figure6()),
        (
            "B1: benchmark classification and verification",
            benchmark_table(),
        ),
        (
            "A1: Lemma 4.4 — cache peaks vs the O(Q₀²) bound",
            cache_bound(),
        ),
        ("A2: Lemma 4.5 — dependency-graph compaction", compaction()),
        ("A3: engine comparison", engine_comparison()),
    ]
}

// ---------------------------------------------------------------------
// T1: Table 1
// ---------------------------------------------------------------------

/// Representative systems for each Table 1 cell, with the classifier's
/// verdict and what the tool can do there.
pub fn table1() -> String {
    let mut t = Table::new(["cell", "classifier", "tool support", "verdict"]);

    // env(nocas) ‖ dis₁(acyc) ‖ … ‖ disₙ(acyc): the decidable fragment.
    {
        let sys = handshake_system(false);
        let class = SystemClass::of(&sys);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        t.row([
            "env(nocas) ‖ dis(acyc)*".to_string(),
            class.complexity().to_string(),
            "decided (simplified semantics / Datalog)".to_string(),
            r.verdict.to_string(),
        ]);
    }
    // env(nocas) ‖ dis₁(nocas) ‖ dis₂(nocas), loops: non-primitive-recursive.
    {
        let sys = looping_nocas_dis_system(2);
        let class = SystemClass::of(&sys);
        let opts = VerifierOptions {
            unroll_dis: Some(2),
            ..Default::default()
        };
        let v = Verifier::new(&sys, opts).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        t.row([
            "env(nocas) ‖ dis(nocas) ‖ dis(nocas)".to_string(),
            class.complexity().to_string(),
            "bounded model checking (dis loops unrolled)".to_string(),
            format!("{} (depth 2)", r.verdict),
        ]);
    }
    // env(nocas) ‖ dis₁(nocas) ‖ dis₂(nocas) ‖ dis₃ ‖ dis₄: undecidable [1].
    {
        let sys = unrestricted_dis_system();
        let class = SystemClass::of(&sys);
        t.row([
            "env(nocas) ‖ dis(nocas)² ‖ dis²".to_string(),
            class.complexity().to_string(),
            "rejected (undecidable per [1]); bounded engines only".to_string(),
            "-".to_string(),
        ]);
    }
    // env(acyc) with CAS: undecidable even loop-free (Theorem 1.1).
    {
        let sys = env_cas_system();
        let class = SystemClass::of(&sys);
        let err = Verifier::new(&sys, VerifierOptions::default()).unwrap_err();
        t.row([
            "env(acyc) with CAS".to_string(),
            class.complexity().to_string(),
            format!("rejected: {err}"),
            "-".to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// F1: Figure 1
// ---------------------------------------------------------------------

/// Replays the producer/consumer snippet concretely and prints the
/// memory's growth (m_init → m₁ → m₂) and the two loads feasible for the
/// consumer.
pub fn figure1() -> String {
    let mut out = String::new();
    let (sys, _, _) = producer_consumer(1);
    let instance = Instance::new(sys, 1);
    let mut trace = Trace::new(instance);
    let _ = writeln!(out, "m_init = {}", trace.last().memory);
    let mut memories = 1;
    loop {
        let succs = monotone_successors(trace.instance(), trace.last());
        // Drive the handshake forward: prefer stores, then loads of
        // non-initial values (so the producer reads the consumer's y = 1
        // rather than consuming the stale initial message).
        let step = succs
            .iter()
            .find(|t| {
                matches!(
                    t.action,
                    parra_ra::step::Action::Store(_) | parra_ra::step::Action::Cas { .. }
                )
            })
            .or_else(|| {
                succs.iter().find(
                    |t| matches!(&t.action, parra_ra::step::Action::Load(m) if m.val != Val(0)),
                )
            })
            .or_else(|| succs.first())
            .cloned();
        let Some(step) = step else { break };
        let before = trace.last().memory.len();
        if trace.push(step).is_err() {
            break;
        }
        if trace.last().memory.len() > before {
            let _ = writeln!(out, "m_{memories}     = {}", trace.last().memory);
            memories += 1;
        }
        if memories > 2 {
            break;
        }
    }
    let _ = writeln!(
        out,
        "\nEvery store adds a message that persists; loads pick any message \
         whose timestamp is at least the loader's view — the execution shape \
         of the paper's Figure 1."
    );
    out
}

// ---------------------------------------------------------------------
// F3: Figure 3
// ---------------------------------------------------------------------

/// The parameterized producer/consumer under the simplified semantics:
/// the consumer loops `z` times although the abstraction tracks only a
/// constant-size `env` part — `z > l` feasibility.
pub fn figure3() -> String {
    let mut t = Table::new([
        "z",
        "verdict",
        "abstract states",
        "env messages (peak)",
        "env configs (peak)",
    ]);
    for z in [1usize, 2, 4, 8, 16] {
        let (sys, y, val) = producer_consumer(z);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(y, val));
        t.row([
            z.to_string(),
            format!("{:?}", report.outcome),
            report.states.to_string(),
            report.peak_env_msgs.to_string(),
            report.peak_env_configs.to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\nThe env part of the abstraction does not grow with z: the same env \
         messages are re-read (clones exist at every needed timestamp — \
         Infinite Supply), so arbitrarily many consumer iterations need no \
         extra env threads in the abstract state."
    );
    out
}

// ---------------------------------------------------------------------
// F4: Figure 4
// ---------------------------------------------------------------------

/// Two possible dependency graphs for one message: `genthread` is the
/// *first* generating thread of the chosen computation, and the same
/// program has computations in which different roles generate (y, 2)
/// first — the writer role th₁ (which read nothing) or the reader role
/// th₂ (which read th₁'s (x, 1) and therefore *depends* on it).
pub fn figure4() -> String {
    let (sys, y) = figure4_system();
    let budget = Budget::exact(&sys).unwrap();
    let engine = Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
    let report = engine.run(SimpTarget::MessageGenerated(y, Val(2)));
    let witness = report.witness.expect("goal reachable");

    // The y-store edge of the writer role: blocking it realizes the
    // computation in which writer threads stop after publishing (x, 1),
    // so a reader thread is the first to generate (y, 2).
    let writer_y_store: Vec<usize> = sys
        .env
        .cfa()
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.instr, parra_program::cfg::Instr::Store(v, _) if v == y))
        .map(|(i, _)| i)
        .take(1)
        .collect();

    let mut out = String::new();
    for (label, blocked) in [
        (
            "computation 1: the writer role generates (y,2) first",
            Vec::new(),
        ),
        (
            "computation 2: writers stop after (x,1); the reader role generates (y,2)",
            writer_y_store,
        ),
    ] {
        let graph = DepGraph::build_with_blocked_env_edges(&sys, &budget, &witness, &blocked);
        let goal = graph.find_message(y, Val(2)).expect("goal node");
        let _ = writeln!(out, "--- {label} ---");
        let _ = writeln!(
            out,
            "goal (y,2): genthread = {}, |depend| = {}, height = {}",
            graph.nodes[goal].genthread,
            graph.nodes[goal].depends.len(),
            graph.height_of(goal),
        );
        let _ = writeln!(out, "{}", graph.to_dot(&sys));
    }
    let _ = writeln!(
        out,
        "Same program, same abstract message (y, 2, ⟨0⁺,0⁺⟩): in one \
         computation its generator read nothing, in the other it read (x, 1) \
         first — the two dependency graphs of Figure 4."
    );
    out
}

// ---------------------------------------------------------------------
// F5: Figure 5
// ---------------------------------------------------------------------

/// The §4.3 cost bound vs the true minimal number of `env` threads, for
/// the re-reading consumer (cost = z, 1 thread suffices — the paper's
/// over-approximation remark) and the value-chaining variant (cost grows,
/// and genuinely more threads are needed).
pub fn figure5() -> String {
    let mut t = Table::new(["variant", "z", "cost(G)", "min concrete env threads"]);
    for z in 1..=4usize {
        let (sys, y, val) = producer_consumer(z);
        let cost = cost_for(&sys, y, val);
        let min = minimal_concrete_threads(&sys, y, val, 6);
        t.row([
            "re-reading".to_string(),
            z.to_string(),
            cost.to_string(),
            min.map(|m| m.to_string()).unwrap_or_else(|| ">6".into()),
        ]);
    }
    for z in 1..=3usize {
        let (sys, y, val) = chained_producer_consumer(z);
        let cost = cost_for(&sys, y, val);
        let min = minimal_concrete_threads(&sys, y, val, 6);
        t.row([
            "value-chaining".to_string(),
            z.to_string(),
            cost.to_string(),
            min.map(|m| m.to_string()).unwrap_or_else(|| ">6".into()),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\ncost(G) bounds the env threads sufficient for the bug (sound); the \
         re-reading consumer shows the over-approximation the paper notes \
         (one producer suffices, cost = z), the chaining variant shows the \
         bound being tight-ish (distinct values need distinct producers)."
    );
    out
}

// ---------------------------------------------------------------------
// F6: Figure 6
// ---------------------------------------------------------------------

/// The TQBF reduction on instance families: verdicts match the oracle;
/// sizes and times scale with the alternation depth.
pub fn figure6() -> String {
    let mut t = Table::new([
        "Ψ",
        "truth",
        "verdict",
        "shared vars",
        "abstract states",
        "time",
    ]);
    let mut instances: Vec<(String, parra_qbf::formula::Qbf)> = Vec::new();
    for n in 0..=2 {
        instances.push((format!("copycat({n})"), gen::copycat(n)));
    }
    for n in 1..=2 {
        instances.push((format!("clairvoyant({n})"), gen::clairvoyant(n)));
    }
    instances.push(("tautology(1)".into(), gen::tautology(1)));
    instances.push(("contradiction(1)".into(), gen::contradiction(1)));
    for (label, qbf) in instances {
        let truth = evaluate(&qbf);
        let reduction = reduce_to_purera(&qbf);
        let start = Instant::now();
        let v = Verifier::new(&reduction.system, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        let elapsed = start.elapsed();
        assert_eq!(r.verdict == Verdict::Unsafe, truth, "reduction mismatch");
        t.row([
            label,
            truth.to_string(),
            r.verdict.to_string(),
            reduction.system.n_vars().to_string(),
            r.stats.states.to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\nEvery verdict equals the TQBF oracle's answer — Theorem 5.1's \
         reduction, executed."
    );
    out
}

// ---------------------------------------------------------------------
// B1: the benchmark table
// ---------------------------------------------------------------------

/// Classification and verification of the full benchmark suite.
pub fn benchmark_table() -> String {
    let mut t = Table::new([
        "benchmark",
        "source",
        "class",
        "expected",
        "verdict",
        "states",
        "time",
    ]);
    for bench in parra_litmus::all() {
        let class = SystemClass::of(&bench.system);
        let start = Instant::now();
        let v = Verifier::new(&bench.system, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        let elapsed = start.elapsed();
        t.row([
            bench.name.to_string(),
            bench.source.split(',').next().unwrap_or("").to_string(),
            class.to_string(),
            match bench.expected {
                Expected::Safe => "SAFE",
                Expected::Unsafe => "UNSAFE",
            }
            .to_string(),
            r.verdict.to_string(),
            r.stats.states.to_string(),
            format!("{elapsed:.2?}"),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// A1: cache peaks
// ---------------------------------------------------------------------

/// The empirical Lemma 4.4: cache-schedule peaks (intensional atoms) of
/// the successful `makeP` derivations vs the `O(Q₀²)` bound.
pub fn cache_bound() -> String {
    let mut t = Table::new([
        "system",
        "Q₀",
        "Q₀²",
        "datalog atoms",
        "cache peak (Lemma 4.6 schedule)",
    ]);
    let mut systems: Vec<(&str, ParamSystem)> = vec![
        ("handshake", handshake_system(false)),
        ("cas-example", cas_example_system()),
    ];
    if let Some(b) = parra_litmus::by_name("producer-consumer") {
        systems.push(("producer-consumer", b.system));
    }
    if let Some(b) = parra_litmus::by_name("peterson-ra") {
        systems.push(("peterson-ra", b.system));
    }
    for (name, sys) in systems {
        let q0 = sys.q0() + 2; // +goal variable added by the transformation
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::CacheDatalog);
        let peak = if r.verdict == Verdict::Unsafe {
            r.stats.cache_peak.to_string()
        } else {
            format!("({}: no derivation)", r.verdict)
        };
        t.row([
            name.to_string(),
            q0.to_string(),
            (q0 * q0).to_string(),
            r.stats.datalog_atoms.to_string(),
            peak,
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\nThe schedule peak stays far below Q₀² on every unsafe instance — \
         the Lemma 4.4/4.6 bound with a wide margin."
    );
    out
}

// ---------------------------------------------------------------------
// A2: compaction
// ---------------------------------------------------------------------

/// Dependency-graph sizes before/after the Lemma 4.5 reductions, on the
/// benchmark witnesses (whose first-found derivations turn out to be
/// already compact) and on a synthetic wide/deep graph where the surgery
/// fires.
pub fn compaction() -> String {
    let mut t = Table::new([
        "system",
        "nodes",
        "height",
        "max fan-in",
        "rewrites",
        "fan-in after",
        "height after",
    ]);
    let mut cases: Vec<(String, ParamSystem, VarId, Val)> = Vec::new();
    for z in [2usize, 4, 6] {
        let (sys, y, val) = producer_consumer(z);
        cases.push((format!("producer-consumer z={z}"), sys, y, val));
    }
    for z in [2usize, 3] {
        let (sys, y, val) = chained_producer_consumer(z);
        cases.push((format!("value-chaining z={z}"), sys, y, val));
    }
    for (name, sys, y, val) in cases {
        let budget = Budget::exact(&sys).unwrap();
        let engine =
            Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(y, val));
        let witness = report.witness.expect("unsafe case");
        let mut graph = DepGraph::build(&sys, &budget, &witness);
        let (nodes, height, fanin) = (graph.nodes.len(), graph.height(), graph.max_fan_in());
        let rewrites = graph.compact();
        t.row([
            name,
            nodes.to_string(),
            height.to_string(),
            fanin.to_string(),
            rewrites.to_string(),
            graph.max_fan_in().to_string(),
            graph.height().to_string(),
        ]);
    }
    // Synthetic non-compact graph: a dis message reading 8 interchangeable
    // same-(var,value) env messages (fan-in merging) on top of an
    // 8-deep chain of duplicate-pair env messages (truncation).
    {
        let mut graph = synthetic_noncompact_graph(8);
        let (nodes, height, fanin) = (graph.nodes.len(), graph.height(), graph.max_fan_in());
        let rewrites = graph.compact();
        t.row([
            "synthetic wide+deep (8)".to_string(),
            nodes.to_string(),
            height.to_string(),
            fanin.to_string(),
            rewrites.to_string(),
            graph.max_fan_in().to_string(),
            graph.height().to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "\nThe search engine's first-found derivations are already compact on \
         the benchmarks (read-counts merge duplicate reads eagerly); the \
         synthetic row shows both Lemma 4.5 reductions firing: fan-in \
         collapses to one dependency per (variable, value) pair, and \
         duplicate-pair chains truncate to height ≤ 2."
    );
    out
}

/// A deliberately non-compact graph: `width` same-(var,value) env
/// messages all read by one dis node, atop a `width`-deep chain of env
/// messages carrying the same (variable, value) pair.
fn synthetic_noncompact_graph(width: usize) -> DepGraph {
    use parra_simplified::depgraph::{GenThread, MsgNode};
    use parra_simplified::message::{AMessage, Origin};
    use parra_simplified::timestamp::ATime;
    use parra_simplified::view::AView;

    let n_vars = 2;
    let x = VarId(0);
    let y = VarId(1);
    let mut nodes: Vec<MsgNode> = (0..n_vars)
        .map(|i| MsgNode {
            msg: AMessage::initial(VarId(i as u32), n_vars),
            genthread: GenThread::Init,
            depends: Vec::new(),
        })
        .collect();
    // A chain of (x, 1) env messages, each depending on the previous —
    // duplicate (var, val) pairs along one dependency path.
    let mut prev = None;
    for g in 0..width {
        let view = AView::zero(n_vars).with(x, ATime::Plus(g.min(3) as u32));
        // Distinct messages need distinct views; vary the y coordinate.
        let view = view.with(
            y,
            if g % 2 == 0 {
                ATime::ZERO
            } else {
                ATime::Plus(0)
            },
        );
        let msg = AMessage::new(x, Val(1), view, Origin::Env);
        let idx = nodes.len();
        nodes.push(MsgNode {
            msg,
            genthread: GenThread::Env,
            depends: prev.map(|p| (p, 1)).into_iter().collect(),
        });
        prev = Some(idx);
    }
    // One dis message reading all of them.
    let all: Vec<(usize, usize)> = (n_vars..nodes.len()).map(|i| (i, 1)).collect();
    let dis_view = AView::zero(n_vars).with(y, ATime::Int(1));
    nodes.push(MsgNode {
        msg: AMessage::new(y, Val(1), dis_view, Origin::Dis),
        genthread: GenThread::Dis(0),
        depends: all,
    });
    DepGraph { nodes, n_vars }
}

// ---------------------------------------------------------------------
// A3: engine comparison
// ---------------------------------------------------------------------

/// The three engines on the same systems: verdicts agree; costs differ.
pub fn engine_comparison() -> String {
    let mut t = Table::new(["system", "engine", "verdict", "states/guesses", "time"]);
    let systems: Vec<(&str, ParamSystem)> = vec![
        ("handshake-unsafe", handshake_system(false)),
        ("handshake-safe", handshake_system(true)),
        ("cas-example", cas_example_system()),
        ("rcu", parra_litmus::by_name("rcu").unwrap().system),
    ];
    for (name, sys) in systems {
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        for engine in [
            EngineId::SimplifiedReach,
            EngineId::CacheDatalog,
            EngineId::BoundedConcrete,
        ] {
            let r = v.run(engine);
            let work = match engine {
                EngineId::CacheDatalog => format!("{} guesses", r.stats.guesses),
                _ => format!("{} states", r.stats.states),
            };
            t.row([
                name.to_string(),
                engine.to_string(),
                r.verdict.to_string(),
                work,
                format!("{:.2?}", r.stats.duration),
            ]);
        }
    }
    t.render()
}

// ---------------------------------------------------------------------
// Shared example systems
// ---------------------------------------------------------------------

/// The env/dis handshake used across experiments; `safe` removes the
/// trigger store.
pub fn handshake_system(safe: bool) -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1).store(x, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    if !safe {
        d.store(y, 1);
    }
    d.load(s, x).assume_eq(s, 1).assert_false();
    let d = d.finish();
    b.build(env, vec![d])
}

/// A CAS interplay example: the dis thread CASes the initial message and
/// must still see an env message afterwards.
pub fn cas_example_system() -> ParamSystem {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let mut env = b.program("env");
    env.store(x, 2);
    let env = env.finish();
    let mut d = b.program("d");
    let r = d.reg("r");
    d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).assert_false();
    let d = d.finish();
    b.build(env, vec![d])
}

/// Two `dis(nocas)` threads with loops (the non-primitive-recursive cell).
fn looping_nocas_dis_system(n_dis: usize) -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1).store(x, 1);
    let env = env.finish();
    let dis = (0..n_dis)
        .map(|i| {
            let mut d = b.program(&format!("d{i}"));
            let s = d.reg("s");
            d.star(|p| {
                p.store(y, 1);
                p.load(s, x);
            });
            d.load(s, x).assume_eq(s, 1).assert_false();
            d.finish()
        })
        .collect();
    b.build(env, dis)
}

/// Four distinguished threads, two of them with CAS and loops — the
/// undecidable cell of Table 1 (per [1]).
fn unrestricted_dis_system() -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, x);
    let env = env.finish();
    let mut dis = Vec::new();
    for i in 0..2 {
        let mut d = b.program(&format!("nocas{i}"));
        d.star(|p| {
            p.store(x, 1);
        });
        dis.push(d.finish());
    }
    for i in 0..2 {
        let mut d = b.program(&format!("full{i}"));
        d.star(|p| {
            p.cas(x, 0, 1);
        });
        d.assert_false();
        dis.push(d.finish());
    }
    b.build(env, dis)
}

/// Loop-free env CAS — Theorem 1.1's undecidable row.
fn env_cas_system() -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let mut env = b.program("env");
    env.cas(x, 0, 1).assert_false();
    let env = env.finish();
    b.build(env, vec![])
}

/// The Figure 4 system: two roles can both generate the *same* abstract
/// message (y, 2, ⟨0⁺, 0⁺⟩) — the writer role th₁ directly, and the reader
/// role th₂ after reading th₁'s (x, 1).
fn figure4_system() -> (ParamSystem, VarId) {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("env");
    let r = env.reg("r");
    let role_writer = env.block(|p| {
        // Writes x itself, then y.
        p.store(x, 1);
        p.store(y, 2);
    });
    let role_reader = env.block(|p| {
        // Reads somebody's x, then writes y — same resulting view shape.
        p.load(r, x);
        p.assume_eq(r, 1);
        p.store(y, 2);
    });
    env.choice_of(vec![role_writer, role_reader]);
    let env = env.finish();
    (b.build(env, vec![]), y)
}

/// The chaining variant of Figure 5: producers increment `x`, the
/// consumer reads the ascending values `1..=z` — distinct producers are
/// genuinely required.
pub fn chained_producer_consumer(z: usize) -> (ParamSystem, VarId, Val) {
    let mut b = SystemBuilder::new(z as u32 + 3);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("producer");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1);
    env.load(r, x);
    env.store(x, Expr::reg(r).add(Expr::val(1)));
    let env = env.finish();
    let mut d = b.program("consumer");
    let s = d.reg("s");
    d.store(y, 1);
    for i in 1..=z {
        d.load(s, x).assume_eq(s, i as u32);
    }
    d.store(y, 2);
    let d = d.finish();
    (b.build(env, vec![d]), y, Val(2))
}

fn cost_for(sys: &ParamSystem, y: VarId, val: Val) -> u64 {
    let budget = Budget::exact(sys).unwrap();
    let engine = Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
    let report = engine.run(SimpTarget::MessageGenerated(y, val));
    assert_eq!(report.outcome, ReachOutcome::Unsafe);
    let witness = report.witness.unwrap();
    let graph = DepGraph::build(sys, &budget, &witness);
    let goal = graph.find_message(y, val).unwrap();
    cost_of_graph(&graph, goal)
}

fn minimal_concrete_threads(sys: &ParamSystem, y: VarId, val: Val, max: usize) -> Option<usize> {
    for n in 0..=max {
        let report = Explorer::new(
            Instance::new(sys.clone(), n),
            ExploreLimits {
                max_depth: 48,
                max_states: 500_000,
            },
        )
        .run(Target::MessageGenerated(y, val));
        if report.outcome == ExploreOutcome::Unsafe {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::Complexity;

    #[test]
    fn helper_systems_build() {
        assert!(SystemClass::of(&handshake_system(false)).is_decidable_fragment());
        assert!(SystemClass::of(&cas_example_system()).is_decidable_fragment());
        assert_eq!(
            SystemClass::of(&looping_nocas_dis_system(2)).complexity(),
            Complexity::NonPrimitiveRecursive
        );
        assert_eq!(
            SystemClass::of(&unrestricted_dis_system()).complexity(),
            Complexity::Undecidable
        );
        assert_eq!(
            SystemClass::of(&env_cas_system()).complexity(),
            Complexity::Undecidable
        );
    }

    #[test]
    fn figure4_generators_differ() {
        let reports = figure4();
        // Both role orders must appear, and the graphs are printed.
        assert!(reports.matches("digraph").count() == 2);
    }

    #[test]
    fn figure5_costs() {
        let (sys, y, val) = producer_consumer(3);
        assert_eq!(cost_for(&sys, y, val), 3);
        assert_eq!(minimal_concrete_threads(&sys, y, val, 3), Some(1));
        let (sys, y, val) = chained_producer_consumer(2);
        assert!(cost_for(&sys, y, val) >= 2);
        assert_eq!(minimal_concrete_threads(&sys, y, val, 4), Some(2));
    }

    #[test]
    fn table1_mentions_all_cells() {
        let t = table1();
        assert!(t.contains("PSPACE-complete"));
        assert!(t.contains("non-primitive-recursive"));
        assert!(t.contains("undecidable"));
    }
}
