//! `parra report`: aggregate, render, and diff flight-recorder output.
//!
//! Ingests JSONL produced anywhere in the pipeline — flight-recorder
//! event logs (`--events-out`), `parra batch` result lines, single-run
//! `--json` reports, and fuzz-campaign summaries — classifying each line
//! by shape. The aggregate [`ReportSet`] renders as a text dashboard
//! (per-engine verdict tallies, duration percentiles from power-of-two
//! buckets, phase breakdowns) and two sets diff against each other,
//! surfacing **verdict flips** and **phase-time regressions** past a
//! threshold — the crater-style comparison batch sweeps and campaigns
//! need.

use crate::events;
use crate::json::{parse, Value};
use crate::metrics::HistSnapshot;
use std::collections::BTreeMap;

/// One verification run, as recovered from any ingestible line shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// The input file, when the line carried attribution.
    pub file: Option<String>,
    /// The engine name (e.g. `simplified-reach`).
    pub engine: String,
    /// The verdict string (`safe` / `unsafe` / `unknown` / ...).
    pub verdict: String,
    /// The interruption reason, if the run was cut short.
    pub interrupted: Option<String>,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Phase name → accumulated microseconds.
    pub phases: BTreeMap<String, u64>,
}

/// One portfolio race, as recovered from a `race` flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceRecord {
    /// The input file, when the line carried attribution.
    pub file: Option<String>,
    /// The racers, in portfolio order.
    pub engines: Vec<String>,
    /// The aggregate verdict (equals the sequential aggregate).
    pub verdict: String,
    /// The engine whose decisive answer won, if any. The `winner` index
    /// lives in the event's volatile section (which racer wins is
    /// wall-clock-bound); it is resolved against `engines` here.
    pub winner: Option<String>,
    /// Wall-clock duration of the race in microseconds.
    pub duration_us: u64,
}

/// A fuzz-campaign summary line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRecord {
    /// The oracle name.
    pub oracle: String,
    /// Cases executed.
    pub cases: u64,
    /// Failing cases.
    pub failures: u64,
}

/// An aggregated set of ingested telemetry.
#[derive(Debug, Clone, Default)]
pub struct ReportSet {
    /// Every recovered run.
    pub runs: Vec<RunRecord>,
    /// Every recovered portfolio race.
    pub races: Vec<RaceRecord>,
    /// Fuzz summaries.
    pub fuzz: Vec<FuzzRecord>,
    /// Flight-recorder event lines seen (all kinds).
    pub event_lines: usize,
    /// Batch lines that carried an error instead of reports.
    pub errors: usize,
    /// Valid JSON lines of no recognized shape.
    pub other_lines: usize,
}

/// A line that failed to ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedLine {
    /// Source path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ReportSet {
    /// Ingests one JSONL line, classified by shape.
    pub fn ingest_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let v = parse(line).map_err(|e| e.to_string())?;
        if v.get("v").is_some() {
            // Flight-recorder event: validate strictly.
            let v = events::check_line(line).map_err(|e| e.message)?;
            self.event_lines += 1;
            match v.get("kind").and_then(Value::as_str) {
                Some("run_end") => self.runs.push(run_from_event(&v)),
                Some("race") => self.races.push(race_from_event(&v)),
                _ => {}
            }
            return Ok(());
        }
        if let Some(reports) = v.get("reports").and_then(Value::as_arr) {
            // `parra batch` line.
            let file = v.get("file").and_then(Value::as_str).map(str::to_string);
            if v.get("error").map(Value::is_null) == Some(false) {
                self.errors += 1;
            }
            for r in reports {
                self.runs.push(run_from_report(file.clone(), r)?);
            }
            return Ok(());
        }
        if v.get("key").is_some() && v.get("input").is_some() {
            // A campaign store record (`results.jsonl`): one run per
            // input, attributed to the input path, with the wall clock
            // in the record's volatile section. Errored inputs count as
            // errors and still surface as `ERROR`-verdict runs so a diff
            // sees them flip rather than disappear.
            if v.get("error").map(Value::is_null) == Some(false) {
                self.errors += 1;
            }
            self.runs.push(RunRecord {
                file: v.get("input").and_then(Value::as_str).map(str::to_string),
                engine: v
                    .get("engine")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                verdict: v
                    .get("verdict")
                    .and_then(Value::as_str)
                    .unwrap_or("ERROR")
                    .to_string(),
                interrupted: v
                    .get("interrupted")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                duration_us: v
                    .get("volatile")
                    .and_then(|vol| vol.get("duration_us"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                phases: BTreeMap::new(),
            });
            return Ok(());
        }
        if v.get("engine").is_some() && v.get("verdict").is_some() {
            // A single `--json` run report.
            self.runs.push(run_from_report(None, &v)?);
            return Ok(());
        }
        if v.get("cases").is_some() && v.get("failures").is_some() {
            self.fuzz.push(FuzzRecord {
                oracle: v
                    .get("oracle")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                cases: v.get("cases").and_then(Value::as_u64).unwrap_or(0),
                failures: v.get("failures").and_then(Value::as_u64).unwrap_or(0),
            });
            return Ok(());
        }
        self.other_lines += 1;
        Ok(())
    }

    /// Whether anything usable was ingested.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.fuzz.is_empty() && self.event_lines == 0
    }
}

fn run_from_event(v: &Value) -> RunRecord {
    let scope = v.get("scope").and_then(Value::as_str).unwrap_or("");
    let fields = v.get("fields");
    let get_field = |k: &str| fields.and_then(|f| f.get(k));
    let mut phases = BTreeMap::new();
    let mut duration_us = 0;
    if let Some(vol) = v.get("volatile").and_then(Value::as_obj) {
        for (k, val) in vol {
            let Some(n) = val.as_u64() else { continue };
            if let Some(name) = k
                .strip_prefix("phase/")
                .and_then(|rest| rest.strip_suffix("_us"))
            {
                phases.insert(name.to_string(), n);
            } else if k == "duration_us" {
                duration_us = n;
            }
        }
    }
    RunRecord {
        file: v.get("file").and_then(Value::as_str).map(str::to_string),
        engine: scope.trim_end_matches('/').to_string(),
        verdict: get_field("verdict")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        interrupted: get_field("interrupted")
            .and_then(Value::as_str)
            .map(str::to_string),
        duration_us,
        phases,
    }
}

fn race_from_event(v: &Value) -> RaceRecord {
    let fields = v.get("fields");
    let get_field = |k: &str| fields.and_then(|f| f.get(k));
    let engines: Vec<String> = get_field("engines")
        .and_then(Value::as_str)
        .unwrap_or("")
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let mut duration_us = 0;
    let mut winner_idx = None;
    if let Some(vol) = v.get("volatile").and_then(Value::as_obj) {
        for (k, val) in vol {
            match (k.as_str(), val.as_u64()) {
                ("duration_us", Some(n)) => duration_us = n,
                ("winner", Some(n)) => winner_idx = Some(n as usize),
                _ => {}
            }
        }
    }
    RaceRecord {
        file: v.get("file").and_then(Value::as_str).map(str::to_string),
        verdict: get_field("verdict")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string(),
        winner: winner_idx.and_then(|i| engines.get(i).cloned()),
        engines,
        duration_us,
    }
}

fn run_from_report(file: Option<String>, v: &Value) -> Result<RunRecord, String> {
    let engine = v
        .get("engine")
        .and_then(Value::as_str)
        .ok_or("report missing `engine`")?;
    let verdict = v
        .get("verdict")
        .and_then(Value::as_str)
        .ok_or("report missing `verdict`")?;
    let mut phases = BTreeMap::new();
    if let Some(ph) = v.get("phases").and_then(Value::as_obj) {
        for (k, val) in ph {
            if let Some(n) = val.as_u64() {
                phases.insert(k.clone(), n);
            }
        }
    }
    Ok(RunRecord {
        file,
        engine: engine.to_string(),
        verdict: verdict.to_string(),
        interrupted: v
            .get("interrupted")
            .and_then(Value::as_str)
            .map(str::to_string),
        duration_us: v.get("duration_us").and_then(Value::as_u64).unwrap_or(0),
        phases,
    })
}

/// Loads and ingests `paths` (files, or directories scanned for
/// `*.json` / `*.jsonl`); malformed lines are collected, not fatal.
pub fn load(paths: &[std::path::PathBuf]) -> std::io::Result<(ReportSet, Vec<MalformedLine>)> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(p)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    matches!(
                        p.extension().and_then(|e| e.to_str()),
                        Some("json") | Some("jsonl")
                    )
                })
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.clone());
        }
    }
    let mut set = ReportSet::default();
    let mut malformed = Vec::new();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        for (i, line) in text.lines().enumerate() {
            if let Err(message) = set.ingest_line(line) {
                malformed.push(MalformedLine {
                    path: f.display().to_string(),
                    line: i + 1,
                    message,
                });
            }
        }
    }
    Ok((set, malformed))
}

/// Strictly validates `text` as a flight-recorder event log: every
/// non-empty line must satisfy the versioned event schema. Returns the
/// number of valid lines.
pub fn check_schema(text: &str) -> Result<usize, MalformedLine> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events::check_line(line).map_err(|e| MalformedLine {
            path: String::new(),
            line: i + 1,
            message: e.message,
        })?;
        n += 1;
    }
    Ok(n)
}

fn hist_of(samples: impl Iterator<Item = u64>) -> HistSnapshot {
    let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
    let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
    for v in samples {
        *buckets.entry(u64::BITS - v.leading_zeros()).or_default() += 1;
        count += 1;
        sum += v;
        max = max.max(v);
    }
    HistSnapshot {
        count,
        sum,
        max,
        buckets: buckets.into_iter().collect(),
    }
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders the per-engine dashboard: verdict/interruption tallies,
/// duration percentiles (upper-bound estimates from power-of-two
/// buckets), and phase breakdowns.
pub fn render_dashboard(set: &ReportSet) -> String {
    let mut out = String::new();
    let files: std::collections::BTreeSet<&str> =
        set.runs.iter().filter_map(|r| r.file.as_deref()).collect();
    out.push_str(&format!(
        "flight report — {} runs over {} files ({} event lines, {} errors)\n",
        set.runs.len(),
        files.len(),
        set.event_lines,
        set.errors,
    ));
    let mut by_engine: BTreeMap<&str, Vec<&RunRecord>> = BTreeMap::new();
    for r in &set.runs {
        by_engine.entry(&r.engine).or_default().push(r);
    }
    if !by_engine.is_empty() {
        out.push_str(&format!(
            "\n{:<22} {:>5} {:>5} {:>7} {:>8} {:>5} {:>9} {:>9} {:>9}\n",
            "engine", "runs", "safe", "unsafe", "unknown", "intr", "p50", "p90", "p99"
        ));
        for (engine, runs) in &by_engine {
            let tally = |v: &str| {
                runs.iter()
                    .filter(|r| r.verdict.eq_ignore_ascii_case(v))
                    .count()
            };
            let intr = runs
                .iter()
                .filter(|r| {
                    r.interrupted.is_some()
                        || r.verdict.to_ascii_uppercase().starts_with("INTERRUPTED")
                })
                .count();
            let h = hist_of(runs.iter().map(|r| r.duration_us));
            out.push_str(&format!(
                "{:<22} {:>5} {:>5} {:>7} {:>8} {:>5} {:>9} {:>9} {:>9}\n",
                engine,
                runs.len(),
                tally("safe"),
                tally("unsafe"),
                tally("unknown"),
                intr,
                fmt_us(h.p50()),
                fmt_us(h.p90()),
                fmt_us(h.p99()),
            ));
        }
        out.push_str("\nphase breakdown (sums across runs; fleet phases can exceed wall-clock):\n");
        for (engine, runs) in &by_engine {
            let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
            for r in runs {
                for (k, v) in &r.phases {
                    *totals.entry(k).or_default() += v;
                }
            }
            if totals.is_empty() {
                out.push_str(&format!("  {engine:<20} (no phase data)\n"));
                continue;
            }
            let grand: u64 = totals.values().sum();
            let mut parts: Vec<(&str, u64)> = totals.into_iter().collect();
            parts.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
            let body = parts
                .iter()
                .map(|(k, v)| {
                    format!(
                        "{k} {:.1}% ({})",
                        *v as f64 * 100.0 / grand as f64,
                        fmt_us(*v)
                    )
                })
                .collect::<Vec<_>>()
                .join(" · ");
            out.push_str(&format!("  {engine:<20} {body}\n"));
        }
    }
    if !set.races.is_empty() {
        let h = hist_of(set.races.iter().map(|r| r.duration_us));
        out.push_str(&format!(
            "\nportfolio races: {} (p50 {}, p90 {}, p99 {})\n",
            set.races.len(),
            fmt_us(h.p50()),
            fmt_us(h.p90()),
            fmt_us(h.p99()),
        ));
        let mut wins: BTreeMap<&str, usize> = BTreeMap::new();
        let mut verdicts: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &set.races {
            *wins
                .entry(r.winner.as_deref().unwrap_or("(no decisive answer)"))
                .or_default() += 1;
            *verdicts.entry(&r.verdict).or_default() += 1;
        }
        let fmt_tally = |m: &BTreeMap<&str, usize>| {
            m.iter()
                .map(|(k, n)| format!("{k} ×{n}"))
                .collect::<Vec<_>>()
                .join(" · ")
        };
        out.push_str(&format!("  verdicts       : {}\n", fmt_tally(&verdicts)));
        out.push_str(&format!("  first decisive : {}\n", fmt_tally(&wins)));
    }
    for f in &set.fuzz {
        out.push_str(&format!(
            "\nfuzz [{}]: {} cases, {} failures\n",
            f.oracle, f.cases, f.failures
        ));
    }
    out
}

/// Knobs for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// A phase regresses when it grows by more than this percentage...
    pub threshold_pct: u64,
    /// ...and by more than this absolute floor (filters noise on
    /// sub-millisecond phases).
    pub floor_us: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            threshold_pct: 25,
            floor_us: 1_000,
        }
    }
}

/// A run whose verdict changed between the two sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictFlip {
    /// `file · engine` key.
    pub key: String,
    /// Verdict in the baseline set.
    pub from: String,
    /// Verdict in the new set.
    pub to: String,
}

/// A phase that slowed past the threshold between the two sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRegression {
    /// `file · engine` key.
    pub key: String,
    /// The phase name (`total` is the whole-run pseudo-phase).
    pub phase: String,
    /// Baseline microseconds.
    pub a_us: u64,
    /// New microseconds.
    pub b_us: u64,
}

/// The outcome of diffing two report sets.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Runs compared (present in both sets).
    pub compared: usize,
    /// Verdict flips.
    pub flips: Vec<VerdictFlip>,
    /// Phase-time regressions.
    pub regressions: Vec<PhaseRegression>,
    /// Keys only in the baseline.
    pub only_in_a: Vec<String>,
    /// Keys only in the new set.
    pub only_in_b: Vec<String>,
}

impl DiffReport {
    /// Whether the diff found anything worth failing a gate over.
    pub fn is_clean(&self) -> bool {
        self.flips.is_empty() && self.regressions.is_empty()
    }
}

fn keyed(set: &ReportSet) -> BTreeMap<(String, String, usize), &RunRecord> {
    let mut occurrence: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for r in &set.runs {
        let base = (r.file.clone().unwrap_or_default(), r.engine.clone());
        let n = occurrence.entry(base.clone()).or_default();
        out.insert((base.0, base.1, *n), r);
        *n += 1;
    }
    out
}

fn key_label(k: &(String, String, usize)) -> String {
    let file = if k.0.is_empty() { "<run>" } else { &k.0 };
    if k.2 == 0 {
        format!("{file} · {}", k.1)
    } else {
        format!("{file} · {} #{}", k.1, k.2)
    }
}

/// Diffs two report sets: verdict flips, phase regressions past the
/// threshold, and coverage differences.
pub fn diff(a: &ReportSet, b: &ReportSet, opts: DiffOptions) -> DiffReport {
    let (ka, kb) = (keyed(a), keyed(b));
    let mut report = DiffReport::default();
    let regressed = |a_us: u64, b_us: u64| {
        b_us > a_us + a_us * opts.threshold_pct / 100 && b_us > a_us + opts.floor_us
    };
    for (k, ra) in &ka {
        let Some(rb) = kb.get(k) else {
            report.only_in_a.push(key_label(k));
            continue;
        };
        report.compared += 1;
        if ra.verdict != rb.verdict {
            report.flips.push(VerdictFlip {
                key: key_label(k),
                from: ra.verdict.clone(),
                to: rb.verdict.clone(),
            });
        }
        let mut phases: Vec<(&str, u64, u64)> = vec![("total", ra.duration_us, rb.duration_us)];
        let names: std::collections::BTreeSet<&str> = ra
            .phases
            .keys()
            .chain(rb.phases.keys())
            .map(String::as_str)
            .collect();
        for name in names {
            phases.push((
                name,
                ra.phases.get(name).copied().unwrap_or(0),
                rb.phases.get(name).copied().unwrap_or(0),
            ));
        }
        for (phase, a_us, b_us) in phases {
            if regressed(a_us, b_us) {
                report.regressions.push(PhaseRegression {
                    key: key_label(k),
                    phase: phase.to_string(),
                    a_us,
                    b_us,
                });
            }
        }
    }
    for k in kb.keys() {
        if !ka.contains_key(k) {
            report.only_in_b.push(key_label(k));
        }
    }
    report
}

/// Renders a diff as text.
pub fn render_diff(d: &DiffReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "diff: {} runs compared, {} verdict flips, {} phase regressions\n",
        d.compared,
        d.flips.len(),
        d.regressions.len()
    ));
    for f in &d.flips {
        out.push_str(&format!("  FLIP {}: {} -> {}\n", f.key, f.from, f.to));
    }
    for r in &d.regressions {
        out.push_str(&format!(
            "  SLOWER {} [{}]: {} -> {} (+{:.0}%)\n",
            r.key,
            r.phase,
            fmt_us(r.a_us),
            fmt_us(r.b_us),
            (r.b_us as f64 / r.a_us.max(1) as f64 - 1.0) * 100.0,
        ));
    }
    if !d.only_in_a.is_empty() {
        out.push_str(&format!("  only in baseline: {}\n", d.only_in_a.join(", ")));
    }
    if !d.only_in_b.is_empty() {
        out.push_str(&format!("  only in new set: {}\n", d.only_in_b.join(", ")));
    }
    if d.is_clean() {
        out.push_str("  clean: no flips, no regressions\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(file: &str, engine: &str, verdict: &str, dur: u64, search_us: u64) -> RunRecord {
        RunRecord {
            file: Some(file.to_string()),
            engine: engine.to_string(),
            verdict: verdict.to_string(),
            interrupted: None,
            duration_us: dur,
            phases: [("search".to_string(), search_us)].into_iter().collect(),
        }
    }

    #[test]
    fn ingests_batch_and_event_and_fuzz_lines() {
        let mut set = ReportSet::default();
        set.ingest_line(r#"{"file":"a.ra","verdict":"safe","interrupted":null,"error":null,"duration_us":10,"reports":[{"engine":"simplified-reach","verdict":"safe","duration_us":9,"interrupted":null,"phases":{"search":7}}]}"#).unwrap();
        set.ingest_line(r#"{"v":1,"seq":4,"t_us":9,"scope":"ra-explore/","kind":"run_end","fields":{"verdict":"unsafe"},"volatile":{"duration_us":123,"phase/search_us":99}}"#).unwrap();
        set.ingest_line(r#"{"v":1,"seq":0,"t_us":1,"scope":"ra-explore/","kind":"round","fields":{"round":0},"volatile":{}}"#).unwrap();
        set.ingest_line(r#"{"oracle":"cross","cases":50,"failures":1,"skipped":0}"#)
            .unwrap();
        assert_eq!(set.runs.len(), 2);
        assert_eq!(set.event_lines, 2);
        assert_eq!(set.fuzz.len(), 1);
        let r = &set.runs[0];
        assert_eq!(
            (r.file.as_deref(), r.engine.as_str()),
            (Some("a.ra"), "simplified-reach")
        );
        assert_eq!(r.phases["search"], 7);
        let e = &set.runs[1];
        assert_eq!(
            (e.engine.as_str(), e.verdict.as_str()),
            ("ra-explore", "unsafe")
        );
        assert_eq!((e.duration_us, e.phases["search"]), (123, 99));
        assert!(set.ingest_line("{ not json").is_err());

        let dash = render_dashboard(&set);
        assert!(dash.contains("simplified-reach"));
        assert!(dash.contains("fuzz [cross]: 50 cases, 1 failures"));
    }

    #[test]
    fn ingests_campaign_store_records() {
        let mut set = ReportSet::default();
        set.ingest_line(r#"{"key":"0123abcd","input":"a.ra","engine":"all-engines","verdict":"SAFE","interrupted":null,"error":null,"volatile":{"duration_us":42}}"#).unwrap();
        set.ingest_line(r#"{"key":"4567abcd","input":"b.ra","engine":"all-engines","verdict":null,"interrupted":null,"error":"parse: boom","volatile":{"duration_us":1}}"#).unwrap();
        assert_eq!(set.runs.len(), 2);
        assert_eq!(set.errors, 1);
        let r = &set.runs[0];
        assert_eq!(
            (r.file.as_deref(), r.engine.as_str(), r.verdict.as_str()),
            (Some("a.ra"), "all-engines", "SAFE")
        );
        assert_eq!(r.duration_us, 42);
        assert_eq!(set.runs[1].verdict, "ERROR");
    }

    #[test]
    fn ingests_race_events_and_attributes_the_winner() {
        let mut set = ReportSet::default();
        set.ingest_line(r#"{"v":1,"file":"a.ra","seq":9,"t_us":50,"scope":"race/","kind":"race","fields":{"n_engines":4,"engines":"simplified-reach,cache-datalog,linear-datalog,bounded-concrete","verdict":"UNSAFE"},"volatile":{"duration_us":1234,"winner":1}}"#).unwrap();
        set.ingest_line(r#"{"v":1,"seq":9,"t_us":50,"scope":"race/","kind":"race","fields":{"n_engines":2,"engines":"simplified-reach,cache-datalog","verdict":"UNKNOWN"},"volatile":{"duration_us":7}}"#).unwrap();
        assert_eq!(set.races.len(), 2);
        let r = &set.races[0];
        assert_eq!(r.file.as_deref(), Some("a.ra"));
        assert_eq!(r.engines.len(), 4);
        // The volatile winner index resolves against the engines field.
        assert_eq!(r.winner.as_deref(), Some("cache-datalog"));
        assert_eq!((r.verdict.as_str(), r.duration_us), ("UNSAFE", 1234));
        assert_eq!(set.races[1].winner, None);

        let dash = render_dashboard(&set);
        assert!(dash.contains("portfolio races: 2"));
        assert!(dash.contains("first decisive : (no decisive answer) ×1 · cache-datalog ×1"));
        assert!(dash.contains("UNKNOWN ×1 · UNSAFE ×1"));
    }

    #[test]
    fn check_schema_rejects_non_event_lines() {
        assert_eq!(
            check_schema("{\"v\":1,\"seq\":0,\"t_us\":0,\"scope\":\"\",\"kind\":\"x\",\"fields\":{},\"volatile\":{}}\n\n"),
            Ok(1)
        );
        let err = check_schema("{\"engine\":\"x\"}").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn diff_detects_injected_flip_and_phase_regression() {
        // The synthetic fixture from the acceptance criteria: one
        // verdict flip and one phase regression, nothing else.
        let base = ReportSet {
            runs: vec![
                run("a.ra", "simplified-reach", "safe", 10_000, 8_000),
                run("b.ra", "simplified-reach", "unsafe", 12_000, 9_000),
                run("a.ra", "cache-datalog", "safe", 50_000, 1_000),
            ],
            ..Default::default()
        };
        let new = ReportSet {
            runs: vec![
                run("a.ra", "simplified-reach", "unknown", 10_100, 8_100), // flip
                run("b.ra", "simplified-reach", "unsafe", 12_100, 30_000), // regression
                run("a.ra", "cache-datalog", "safe", 50_500, 1_100),
            ],
            ..Default::default()
        };
        let d = diff(&base, &new, DiffOptions::default());
        assert_eq!(d.compared, 3);
        assert_eq!(d.flips.len(), 1);
        assert_eq!(d.flips[0].from, "safe");
        assert_eq!(d.flips[0].to, "unknown");
        assert!(d.flips[0].key.contains("a.ra"));
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].phase, "search");
        assert!(!d.is_clean());
        let text = render_diff(&d);
        assert!(text.contains("FLIP"));
        assert!(text.contains("SLOWER"));

        // Identical sets are clean.
        let d2 = diff(&base, &base, DiffOptions::default());
        assert!(d2.is_clean());
        assert_eq!(d2.compared, 3);
        assert!(render_diff(&d2).contains("clean"));
    }

    #[test]
    fn diff_small_absolute_changes_are_filtered_by_the_floor() {
        let base = ReportSet {
            runs: vec![run("a.ra", "e", "safe", 100, 80)],
            ..Default::default()
        };
        let new = ReportSet {
            runs: vec![run("a.ra", "e", "safe", 900, 700)], // 9× but < 1ms floor
            ..Default::default()
        };
        assert!(diff(&base, &new, DiffOptions::default()).is_clean());
    }

    #[test]
    fn repeated_engine_runs_pair_by_occurrence() {
        let mk = |verdicts: [&str; 2]| ReportSet {
            runs: verdicts
                .iter()
                .map(|v| run("a.ra", "e", v, 10, 5))
                .collect(),
            ..Default::default()
        };
        let d = diff(
            &mk(["safe", "safe"]),
            &mk(["safe", "unknown"]),
            DiffOptions::default(),
        );
        assert_eq!(d.flips.len(), 1);
        assert!(d.flips[0].key.contains("#1"));
        // Coverage differences surface instead of spurious flips.
        let d = diff(
            &mk(["safe", "safe"]),
            &ReportSet {
                runs: vec![run("a.ra", "e", "safe", 10, 5)],
                ..Default::default()
            },
            DiffOptions::default(),
        );
        assert!(d.is_clean());
        assert_eq!(d.only_in_a.len(), 1);
    }
}
