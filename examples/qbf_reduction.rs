//! The PSPACE-hardness reduction (Section 5, Figure 6): TQBF instances are
//! compiled to PureRA programs whose parameterized verification verdict
//! equals the formula's truth value.
//!
//! Run with: `cargo run --example qbf_reduction`

use parra::prelude::*;
use parra::qbf::eval::evaluate;
use parra::qbf::formula::{BoolExpr, Qbf};
use parra::qbf::gen;
use parra::qbf::reduce::reduce_to_purera;

fn main() {
    let instances: Vec<(&str, Qbf)> = vec![
        (
            "∀u0. u0 ∨ ¬u0",
            Qbf::new(0, BoolExpr::var(0).or(BoolExpr::var(0).not())),
        ),
        ("∀u0. u0", Qbf::new(0, BoolExpr::var(0))),
        ("copycat(1):  ∀u0 ∃e1 ∀u1. e1 ↔ u0", gen::copycat(1)),
        ("clairvoyant(1): ∀u0 ∃e1 ∀u1. e1 ↔ u1", gen::clairvoyant(1)),
        ("copycat(2)", gen::copycat(2)),
    ];

    println!(
        "{:<45} {:>6} {:>9} {:>8} {:>8}",
        "Ψ", "truth", "verdict", "vars", "states"
    );
    println!("{}", "-".repeat(80));
    for (label, qbf) in instances {
        let truth = evaluate(&qbf);
        let reduction = reduce_to_purera(&qbf);
        let verifier = Verifier::new(&reduction.system, VerifierOptions::default())
            .expect("PureRA is in the decidable class");
        let result = verifier.run(EngineId::SimplifiedReach);
        let agrees = (result.verdict == Verdict::Unsafe) == truth;
        println!(
            "{:<45} {:>6} {:>9} {:>8} {:>8}  {}",
            label,
            truth,
            result.verdict.to_string(),
            reduction.system.n_vars(),
            result.stats.states,
            if agrees { "✓" } else { "✗ MISMATCH" }
        );
        assert!(agrees, "reduction disagrees with the TQBF oracle");
    }
    println!(
        "\nEach program is env(nocas, acyc) PureRA: no registers beyond the \
         load-assume scratch, stores only write 1, and truth values live in \
         the views — vw(t_b) = 0 ⟺ b = 1 (readability of the initial \
         message)."
    );
}
