//! The flight recorder: a structured, append-only event log.
//!
//! Engines emit round/wave-granular [`Event`]s into the recorder as they
//! run; the CLI persists them as schema-versioned JSONL (`--events-out`)
//! and `parra report` aggregates and diffs the resulting files. Each
//! event separates its payload into two sections:
//!
//! - **`fields`** — the deterministic contract. For a run that completes
//!   (is not interrupted), the sequence of `(seq, scope, kind, fields)`
//!   tuples is identical at every `--threads` count. Engines only append
//!   events from their sequential merge/commit points, never from worker
//!   threads, and never put thread-count-dependent data here.
//! - **`volatile`** — wall-clock and environment-dependent measurements:
//!   durations, budget headroom, heap high-watermarks, worker counts.
//!   These vary run to run and are exempt from the determinism contract.
//!
//! The JSONL schema (version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {"v":1,"seq":0,"t_us":12,"scope":"simplified-reach/","kind":"wave",
//!  "fields":{"wave":0,"worlds":3},"volatile":{"heap_bytes":4096}}
//! ```
//!
//! An optional top-level `"file"` string attributes an event to an input
//! system (added by `parra batch`). Unknown top-level keys are rejected
//! by [`check_line`] so the schema can grow only by bumping the version.
//!
//! `parra campaign` emits its own event kinds through the same schema:
//! `campaign_start` (fields: `engine`, `inputs`, `shard`), one
//! `input_done` per owned input (fields: `input`, `key`, `cached`,
//! `verdict`; volatile `duration_us` on fresh runs), and `campaign_end`
//! (fields: `assigned`, `cached`, `verified`), under the `campaign/`
//! scope. The campaign *store* (`results.jsonl` inside a `--store`
//! directory) is a separate, non-event format with the same
//! deterministic/volatile split: one record per input with `key`,
//! `input`, `engine`, `verdict`, `interrupted`, `error` as the
//! deterministic contract and wall-clock `duration_us` under a trailing
//! `"volatile"` object — `parra report` ingests those lines too,
//! keyed by input path.

use crate::json::{write_escaped, ObjWriter, Value};

/// The event-log schema version emitted by this build.
pub const SCHEMA_VERSION: u64 = 1;

/// A value in an event's deterministic `fields` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventValue {
    /// An unsigned integer.
    U64(u64),
    /// A string (verdicts, outcome labels).
    Str(String),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> EventValue {
        EventValue::U64(v)
    }
}

impl From<usize> for EventValue {
    fn from(v: usize) -> EventValue {
        EventValue::U64(v as u64)
    }
}

impl From<u32> for EventValue {
    fn from(v: u32) -> EventValue {
        EventValue::U64(v as u64)
    }
}

impl From<&str> for EventValue {
    fn from(v: &str) -> EventValue {
        EventValue::Str(v.to_string())
    }
}

impl From<String> for EventValue {
    fn from(v: String) -> EventValue {
        EventValue::Str(v)
    }
}

/// One flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the log (0-based, dense).
    pub seq: u64,
    /// Microseconds since the recorder's epoch (volatile).
    pub t_us: u64,
    /// The emitting recorder's scope prefix (e.g. `"simplified-reach/"`).
    pub scope: String,
    /// The event kind (`run_start`, `wave`, `round`, `run_end`, ...).
    pub kind: String,
    /// Deterministic payload — identical at every thread count for
    /// completed runs.
    pub fields: Vec<(String, EventValue)>,
    /// Non-deterministic payload: durations, headroom, heap, etc.
    pub volatile: Vec<(String, u64)>,
}

impl Event {
    /// Renders the event as one JSONL line (no trailing newline).
    /// `extra` key/value string pairs (e.g. `("file", path)`) are added
    /// as top-level fields after `v`.
    pub fn render(&self, extra: &[(&str, &str)]) -> String {
        let mut w = ObjWriter::new();
        w.num_field("v", SCHEMA_VERSION);
        for (k, v) in extra {
            w.str_field(k, v);
        }
        w.num_field("seq", self.seq);
        w.num_field("t_us", self.t_us);
        w.str_field("scope", &self.scope);
        w.str_field("kind", &self.kind);
        let mut fields = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            write_escaped(&mut fields, k);
            fields.push(':');
            match v {
                EventValue::U64(n) => fields.push_str(&n.to_string()),
                EventValue::Str(s) => write_escaped(&mut fields, s),
            }
        }
        fields.push('}');
        w.raw_field("fields", &fields);
        let mut vol = String::from("{");
        for (i, (k, v)) in self.volatile.iter().enumerate() {
            if i > 0 {
                vol.push(',');
            }
            write_escaped(&mut vol, k);
            vol.push(':');
            vol.push_str(&v.to_string());
        }
        vol.push('}');
        w.raw_field("volatile", &vol);
        w.finish()
    }

    /// The deterministic projection `(seq, scope, kind, fields)` used by
    /// the cross-thread-count determinism tests.
    pub fn deterministic_key(&self) -> (u64, String, String, Vec<(String, EventValue)>) {
        (
            self.seq,
            self.scope.clone(),
            self.kind.clone(),
            self.fields.clone(),
        )
    }
}

/// Renders a batch of events as JSONL, one line per event.
pub fn render_jsonl(events: &[Event], extra: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render(extra));
        out.push('\n');
    }
    out
}

/// A schema violation found by [`check_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn err(message: impl Into<String>) -> SchemaError {
    SchemaError {
        message: message.into(),
    }
}

/// Validates one JSONL line against the version-1 event schema.
///
/// Returns the parsed value on success so callers can go on to ingest
/// it without re-parsing.
pub fn check_line(line: &str) -> Result<Value, SchemaError> {
    let v = crate::json::parse(line).map_err(|e| err(format!("not valid JSON: {e}")))?;
    let Some(obj) = v.as_obj() else {
        return Err(err("event is not a JSON object"));
    };
    match v.get("v").and_then(Value::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(other) => return Err(err(format!("unsupported schema version {other}"))),
        None => return Err(err("missing numeric `v` field")),
    }
    for key in ["seq", "t_us"] {
        if v.get(key).and_then(Value::as_u64).is_none() {
            return Err(err(format!("missing numeric `{key}` field")));
        }
    }
    for key in ["scope", "kind"] {
        if v.get(key).and_then(Value::as_str).is_none() {
            return Err(err(format!("missing string `{key}` field")));
        }
    }
    let Some(fields) = v.get("fields").and_then(Value::as_obj) else {
        return Err(err("missing object `fields` field"));
    };
    for (k, fv) in fields {
        if fv.as_u64().is_none() && fv.as_str().is_none() {
            return Err(err(format!("field `{k}` is neither integer nor string")));
        }
    }
    let Some(volatile) = v.get("volatile").and_then(Value::as_obj) else {
        return Err(err("missing object `volatile` field"));
    };
    for (k, vv) in volatile {
        if vv.as_u64().is_none() {
            return Err(err(format!("volatile `{k}` is not an integer")));
        }
    }
    for (k, fv) in obj {
        match k.as_str() {
            "v" | "seq" | "t_us" | "scope" | "kind" | "fields" | "volatile" => {}
            "file" => {
                if fv.as_str().is_none() {
                    return Err(err("`file` is not a string"));
                }
            }
            other => return Err(err(format!("unknown top-level key `{other}`"))),
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 3,
            t_us: 17,
            scope: "simplified-reach/".into(),
            kind: "wave".into(),
            fields: vec![
                ("wave".into(), EventValue::U64(2)),
                ("verdict".into(), EventValue::Str("safe".into())),
            ],
            volatile: vec![("heap_bytes".into(), 4096)],
        }
    }

    #[test]
    fn render_then_check_round_trips() {
        let line = sample().render(&[]);
        let v = check_line(&line).expect("schema-valid");
        assert_eq!(v.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("wave"));
        assert_eq!(
            v.get("fields").unwrap().get("wave").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            v.get("volatile")
                .unwrap()
                .get("heap_bytes")
                .unwrap()
                .as_u64(),
            Some(4096)
        );
    }

    #[test]
    fn file_attribution_is_allowed() {
        let line = sample().render(&[("file", "examples/systems/peterson.ra")]);
        let v = check_line(&line).expect("schema-valid");
        assert_eq!(
            v.get("file").unwrap().as_str(),
            Some("examples/systems/peterson.ra")
        );
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(check_line("not json").is_err());
        assert!(check_line("[1,2]").is_err());
        // Wrong version.
        assert!(check_line(
            r#"{"v":2,"seq":0,"t_us":0,"scope":"","kind":"x","fields":{},"volatile":{}}"#
        )
        .is_err());
        // Missing kind.
        assert!(
            check_line(r#"{"v":1,"seq":0,"t_us":0,"scope":"","fields":{},"volatile":{}}"#).is_err()
        );
        // Non-integer volatile.
        assert!(check_line(
            r#"{"v":1,"seq":0,"t_us":0,"scope":"","kind":"x","fields":{},"volatile":{"d":"no"}}"#
        )
        .is_err());
        // Unknown top-level key.
        assert!(check_line(
            r#"{"v":1,"seq":0,"t_us":0,"scope":"","kind":"x","fields":{},"volatile":{},"zzz":1}"#
        )
        .is_err());
    }

    #[test]
    fn jsonl_batch_rendering() {
        let text = render_jsonl(&[sample(), sample()], &[("file", "a.ra")]);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            check_line(line).expect("each line schema-valid");
        }
    }
}
