//! A hash-keyed sharded map from states to dense ids.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A visited-set index split into `2^k` hash-keyed shards.
///
/// Shard routing uses the state's hash, so a state always lands in the
/// same shard regardless of which worker discovered it. The borrow
/// discipline gives race-freedom for free: during the parallel expansion
/// phase workers hold `&ShardedIndex` and may only [`get`](Self::get)
/// (membership pre-checks); insertions go through `&mut self` in the
/// sequential merge. No locks, no atomics.
///
/// Splitting the table also keeps rehash pauses per-shard and is the
/// routing structure a future parallel merge (per-shard ownership) slots
/// into.
#[derive(Debug, Clone)]
pub struct ShardedIndex<S> {
    shards: Vec<HashMap<S, u32>>,
    mask: u64,
    len: usize,
}

impl<S: Hash + Eq> ShardedIndex<S> {
    /// An empty index with at least `n_shards` shards (rounded up to a
    /// power of two, minimum 1).
    pub fn new(n_shards: usize) -> ShardedIndex<S> {
        let n = n_shards.max(1).next_power_of_two();
        ShardedIndex {
            shards: (0..n).map(|_| HashMap::new()).collect(),
            mask: (n - 1) as u64,
            len: 0,
        }
    }

    /// The shard a state routes to.
    pub fn shard_of(&self, s: &S) -> usize {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        (h.finish() & self.mask) as usize
    }

    /// The id of `s`, if present.
    pub fn get(&self, s: &S) -> Option<u32> {
        self.shards[self.shard_of(s)].get(s).copied()
    }

    /// Whether `s` is present.
    pub fn contains(&self, s: &S) -> bool {
        self.get(s).is_some()
    }

    /// Inserts `s ↦ id` into its owning shard. Returns the previous id if
    /// `s` was already present (callers treating this as a set should
    /// check [`contains`](Self::contains) first).
    pub fn insert(&mut self, s: S, id: u32) -> Option<u32> {
        let shard = self.shard_of(&s);
        let prev = self.shards[shard].insert(s, id);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Number of states indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard occupancy, in shard order. Shard routing depends only
    /// on state hashes, so for a given state set the sizes are
    /// deterministic across thread counts.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(HashMap::len).collect()
    }

    /// Shard imbalance in permille: `(max - mean) / mean * 1000` over
    /// the shard sizes (0 for an empty or perfectly balanced index).
    /// The flight recorder emits this per wave/round so hash skew shows
    /// up in reports before it costs wall-clock time.
    pub fn imbalance_permille(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let max = self.shard_sizes().into_iter().max().unwrap_or(0) as f64;
        let mean = self.len as f64 / self.shards.len() as f64;
        ((max - mean) / mean * 1000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedIndex::<u32>::new(0).n_shards(), 1);
        assert_eq!(ShardedIndex::<u32>::new(1).n_shards(), 1);
        assert_eq!(ShardedIndex::<u32>::new(3).n_shards(), 4);
        assert_eq!(ShardedIndex::<u32>::new(8).n_shards(), 8);
    }

    #[test]
    fn insert_get_roundtrip_across_shards() {
        let mut idx = ShardedIndex::new(4);
        for i in 0..1000u32 {
            assert!(!idx.contains(&i));
            assert_eq!(idx.insert(i, i * 2), None);
        }
        assert_eq!(idx.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(idx.get(&i), Some(i * 2));
        }
        // Routing is stable: re-insert hits the same shard and reports
        // the previous id.
        assert_eq!(idx.insert(7, 99), Some(14));
        assert_eq!(idx.len(), 1000);
    }

    #[test]
    fn shard_sizes_and_imbalance() {
        let mut idx = ShardedIndex::new(4);
        assert_eq!(idx.shard_sizes(), vec![0, 0, 0, 0]);
        assert_eq!(idx.imbalance_permille(), 0);
        for i in 0..1000u32 {
            idx.insert(i, i);
        }
        let sizes = idx.shard_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // The hash spreads 1000 keys reasonably: under 2× the mean.
        assert!(
            idx.imbalance_permille() < 1000,
            "{}",
            idx.imbalance_permille()
        );

        // A single-shard index is perfectly balanced by definition.
        let mut one = ShardedIndex::new(1);
        one.insert(1u32, 0);
        assert_eq!(one.imbalance_permille(), 0);
    }
}
