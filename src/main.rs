//! The `parra` command-line verifier.
//!
//! ```text
//! parra classify <file.ra>
//! parra verify   <file.ra> [--engine simplified|datalog|linear|concrete]
//!                          [--unroll N] [--all-engines] [--concretize]
//!                          [--stats] [--json] [--trace-out FILE]
//! parra print    <file.ra>
//! parra fuzz     [--oracle NAME] [--seconds N | --cases N] [--seed N]
//!                [--corpus DIR] [--minimize FILE] [--json]
//! ```
//!
//! Input files use the `system { … }` syntax (see the README or
//! `examples/`). Exit code 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 64+ =
//! usage/input errors (including exact-engine disagreement under
//! `--all-engines`).
//!
//! Observability: `PARRA_LOG=off|summary|debug` selects the logging level
//! (heartbeats and debug lines go to stderr); `--stats` implies at least
//! `summary` and prints the span tree plus metric totals to stderr after
//! the run; `--trace-out FILE` writes a Chrome-trace JSON (load it in
//! `chrome://tracing` or Perfetto); `--json` prints each engine's
//! structured [`RunReport`](parra::core::verify::RunReport) as one JSON
//! object per line on stdout instead of the human-readable report.

use parra::obs::{Level, Recorder};
use parra::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("parra: {msg}");
            ExitCode::from(64)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "classify" => classify(rest),
        "verify" => verify(rest),
        "print" => print_system(rest),
        "fuzz" => fuzz(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  parra classify <file.ra>\n  parra verify <file.ra> \
     [--engine simplified|datalog|linear|concrete] [--unroll N] [--all-engines] \
     [--concretize] [--threads N] [--stats] [--json] [--trace-out FILE]\n  \
     parra print <file.ra>\n  parra fuzz [--oracle NAME] [--seconds N | \
     --cases N] [--seed N] [--corpus DIR] [--minimize FILE] [--json]\n\n\
     PARRA_LOG=off|summary|debug selects the logging level (--stats \
     implies summary). --threads defaults to PARRA_THREADS or the \
     machine's parallelism; reports are identical for every thread \
     count.\n\nfuzz oracles: engines-agree, equivalence, \
     thread-determinism, round-trip, monotonicity, eval-agree \
     (default: all). A \
     --seconds budget is a deterministic case target (seconds x the \
     oracle's calibrated cases/sec), so repeated runs are identical; \
     failures are minimized and, with --corpus DIR, saved as .ra files."
        .to_owned()
}

/// Flags whose next argument is a value, not the input path.
const VALUE_FLAGS: &[&str] = &[
    "--engine",
    "--unroll",
    "--trace-out",
    "--threads",
    "--oracle",
    "--seconds",
    "--cases",
    "--seed",
    "--corpus",
    "--minimize",
];

fn load(args: &[String]) -> Result<ParamSystem, String> {
    let mut path = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            path = Some(a);
            break;
        }
    }
    let path = path.ok_or("missing input file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn classify(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    let class = SystemClass::of(&sys);
    println!("class      : {class}");
    println!("complexity : {}", class.complexity());
    println!(
        "supported  : {}",
        if class.is_decidable_fragment() {
            "yes (decided exactly)"
        } else if class.env.nocas {
            "with --unroll N (bounded model checking of dis loops)"
        } else {
            "no (undecidable, Theorem 1.1)"
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let json = args.iter().any(|a| a == "--json");
    let stats_flag = args.iter().any(|a| a == "--stats");
    let trace_out = flag_value(args, "--trace-out");
    if args.iter().any(|a| a == "--trace-out") && trace_out.is_none() {
        return Err("--trace-out needs a file path".into());
    }
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let threads = parra::search::Threads::resolve(threads).get();

    let mut rec = Recorder::from_env();
    if (stats_flag || trace_out.is_some()) && !rec.is_enabled() {
        rec = Recorder::enabled(Level::Summary);
    }

    let options = VerifierOptions {
        unroll_dis: unroll,
        threads,
        ..Default::default()
    };
    let verifier =
        Verifier::new_with_recorder(&sys, options, rec.clone()).map_err(|e| e.to_string())?;

    let engines: Vec<Engine> = if args.iter().any(|a| a == "--all-engines") {
        vec![
            Engine::SimplifiedReach,
            Engine::CacheDatalog,
            Engine::LinearDatalog,
            Engine::BoundedConcrete,
        ]
    } else {
        let engine = match flag_value(args, "--engine").as_deref() {
            None | Some("simplified") => Engine::SimplifiedReach,
            Some("datalog") => Engine::CacheDatalog,
            Some("linear") => Engine::LinearDatalog,
            Some("concrete") => Engine::BoundedConcrete,
            Some(other) => return Err(format!("unknown engine `{other}`")),
        };
        vec![engine]
    };

    let mut verdicts: Vec<(Engine, Verdict)> = Vec::new();
    for engine in engines {
        let result = verifier.run(engine);
        if json {
            println!("{}", result.report.to_json());
        } else {
            println!(
                "[{engine}] {} ({:.2?}, {} states)",
                result.verdict, result.stats.duration, result.stats.states
            );
            if let Some(bound) = result.env_thread_bound {
                println!("  env threads sufficient for the violation: {bound}");
            }
            for line in &result.witness_lines {
                println!("  witness: {line}");
            }
            for note in &result.notes {
                println!("  note: {note}");
            }
            if args.iter().any(|a| a == "--concretize") && result.verdict == Verdict::Unsafe {
                match verifier.concretize(&result, 6) {
                    Some(w) => {
                        println!("  concrete interleaving ({} env threads):", w.n_env);
                        for step in &w.steps {
                            println!("    {step}");
                        }
                    }
                    None => println!(
                        "  (no concrete interleaving found within 6 env threads \
                         and default depth)"
                    ),
                }
            }
        }
        verdicts.push((result.engine, result.verdict));
    }

    if stats_flag {
        let tree = rec.render_tree();
        if !tree.is_empty() {
            eprint!("{tree}");
        }
        let snap = rec.snapshot();
        for (name, v) in &snap.counters {
            eprintln!("  {name} = {v}");
        }
        for (name, g) in &snap.gauges {
            eprintln!("  {name} = {} (peak {})", g.value, g.peak);
        }
    }
    if let Some(path) = trace_out {
        rec.write_chrome_trace(std::path::Path::new(&path))
            .map_err(|e| format!("--trace-out `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }

    let final_verdict = aggregate_verdicts(&verdicts)?;
    Ok(match final_verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Unsafe => ExitCode::from(1),
        Verdict::Unknown => ExitCode::from(2),
    })
}

fn print_system(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    print!("{}", parra::program::pretty::system_to_string(&sys));
    Ok(ExitCode::SUCCESS)
}

fn fuzz(args: &[String]) -> Result<ExitCode, String> {
    use parra::fuzz::oracle::{all_oracles, oracle_by_name, Oracle, OracleOutcome};
    use parra::fuzz::runner::{self, FuzzBudget, FuzzConfig, MinimizeOutcome};

    let json = args.iter().any(|a| a == "--json");
    let seed = flag_value(args, "--seed")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(0);
    let cases = flag_value(args, "--cases")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--cases: {e}")))
        .transpose()?;
    let seconds = flag_value(args, "--seconds")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seconds: {e}")))
        .transpose()?;
    let budget = match (cases, seconds) {
        (Some(n), _) => FuzzBudget::Cases(n),
        (None, Some(s)) => FuzzBudget::Seconds(s),
        (None, None) => FuzzBudget::Seconds(1),
    };
    let corpus_dir = flag_value(args, "--corpus").map(std::path::PathBuf::from);
    let oracles: Vec<Box<dyn Oracle>> = match flag_value(args, "--oracle").as_deref() {
        None | Some("all") => all_oracles(),
        Some(name) => vec![oracle_by_name(name).ok_or_else(|| {
            format!(
                "unknown oracle `{name}` (expected one of: {}, or all)",
                all_oracles()
                    .iter()
                    .map(|o| o.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?],
    };

    if let Some(path) = flag_value(args, "--minimize") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let sys = parse_system(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut any_failure = false;
        for oracle in &oracles {
            match runner::minimize(oracle.as_ref(), &sys) {
                MinimizeOutcome::NotFailing(OracleOutcome::Pass) => {
                    println!("[{}] passes; nothing to minimize", oracle.name());
                }
                MinimizeOutcome::NotFailing(OracleOutcome::Skip(why)) => {
                    println!("[{}] skipped: {why}", oracle.name());
                }
                MinimizeOutcome::NotFailing(OracleOutcome::Fail(_)) => unreachable!(),
                MinimizeOutcome::Minimized { message, result } => {
                    any_failure = true;
                    println!("[{}] FAIL: {message}", oracle.name());
                    println!(
                        "minimized in {} steps ({} candidates tried):",
                        result.steps, result.candidates_tried
                    );
                    print!("{}", parra::program::pretty::system_to_string(&result.sys));
                    if let Some(dir) = &corpus_dir {
                        let saved = parra::fuzz::corpus::save(
                            dir,
                            oracle.name(),
                            seed,
                            &message,
                            &result.sys,
                        )
                        .map_err(|e| format!("--corpus: {e}"))?;
                        println!("saved to {}", saved.display());
                    }
                }
            }
        }
        return Ok(if any_failure {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        });
    }

    let rec = Recorder::from_env();
    let cfg = FuzzConfig {
        seed,
        budget,
        corpus_dir,
    };
    let mut any_failure = false;
    for oracle in &oracles {
        let summary = runner::run(oracle.as_ref(), &cfg, &rec);
        any_failure |= !summary.failures.is_empty();
        if json {
            println!("{}", summary.to_json());
        } else {
            println!("{}", summary.render());
            for f in &summary.failures {
                println!("  seed {}: {}", f.seed, f.message);
                println!(
                    "  minimized ({} shrink steps, size {}):",
                    f.shrink_steps, f.minimized_size
                );
                for line in parra::program::pretty::system_to_string(&f.minimized).lines() {
                    println!("    {line}");
                }
                if let Some(path) = &f.saved_to {
                    println!("  saved to {}", path.display());
                }
            }
        }
    }
    Ok(if any_failure {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}
