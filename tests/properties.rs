//! Randomized property tests for the core data structures and the
//! executable lemmas.
//!
//! The offline build environment rules out `proptest`, so each property
//! is exercised over a deterministic sample sweep drawn from the in-tree
//! splitmix64 generator ([`parra_qbf::rng::Rng`]). Failures print the
//! iteration seed so a case can be replayed by hand.

use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_qbf::rng::Rng;
use parra_ra::lifting::Lifting;
use parra_ra::supply::{duplicate_env_message, env_store_indices, Placement};
use parra_ra::timestamp::Timestamp;
use parra_ra::{Instance, Trace};
use parra_simplified::timestamp::ATime;
use parra_simplified::view::AView;

// ---------------------------------------------------------------------
// Abstract timestamps: a total order interleaving slots and gaps
// ---------------------------------------------------------------------

fn random_atime(rng: &mut Rng) -> ATime {
    let i = rng.gen_range(20) as u32;
    if rng.gen_bool(0.5) {
        ATime::Plus(i)
    } else {
        ATime::Int(i)
    }
}

#[test]
fn atime_order_total_and_transitive() {
    let mut rng = Rng::seed_from_u64(0xA71E);
    for case in 0..2000 {
        let a = random_atime(&mut rng);
        let b = random_atime(&mut rng);
        let c = random_atime(&mut rng);
        // Totality.
        assert!(a <= b || b <= a, "case {case}: {a:?} vs {b:?}");
        // Antisymmetry.
        if a <= b && b <= a {
            assert_eq!(a, b, "case {case}");
        }
        // Transitivity.
        if a <= b && b <= c {
            assert!(a <= c, "case {case}: {a:?} {b:?} {c:?}");
        }
        // The defining interleaving: Int(i) < Plus(i) < Int(i+1).
        assert!(ATime::Int(a.floor()) <= a, "case {case}");
        assert!(a <= ATime::Plus(a.floor()), "case {case}");
    }
}

#[test]
fn aview_join_is_lattice_join() {
    let mut rng = Rng::seed_from_u64(0xA71F);
    for case in 0..500 {
        let draw = |rng: &mut Rng| {
            AView::from_times((0..3).map(|_| random_atime(rng)).collect::<Vec<_>>())
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let c = draw(&mut rng);
        // Commutative, idempotent, associative.
        assert_eq!(a.join(&b), b.join(&a), "case {case}");
        assert_eq!(a.join(&a), a.clone(), "case {case}");
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)), "case {case}");
        // Least upper bound.
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j), "case {case}");
        if a.leq(&c) && b.leq(&c) {
            assert!(j.leq(&c), "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Expressions: evaluation stays in the domain
// ---------------------------------------------------------------------

fn random_expr(rng: &mut Rng, n_regs: u32, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            Expr::val(rng.gen_range(8) as u32)
        } else {
            Expr::reg(parra_program::ident::RegId(
                rng.gen_range(n_regs as usize) as u32
            ))
        };
    }
    let a = random_expr(rng, n_regs, depth - 1);
    match rng.gen_range(5) {
        0 => a.not(),
        1 => a.add(random_expr(rng, n_regs, depth - 1)),
        2 => a.eq(random_expr(rng, n_regs, depth - 1)),
        3 => a.and(random_expr(rng, n_regs, depth - 1)),
        _ => a.or(random_expr(rng, n_regs, depth - 1)),
    }
}

#[test]
fn expr_eval_in_domain() {
    let mut rng = Rng::seed_from_u64(0xE4A1);
    for case in 0..500 {
        let e = random_expr(&mut rng, 2, 3);
        let dom = parra_program::value::Dom::new(1 + rng.gen_range(5) as u32);
        let mut rv = parra_program::expr::RegVal::new(2);
        rv.set(
            parra_program::ident::RegId(0),
            dom.wrap(rng.gen_range(6) as u64),
        );
        rv.set(
            parra_program::ident::RegId(1),
            dom.wrap(rng.gen_range(6) as u64),
        );
        let v = e.eval(&rv, dom);
        assert!(dom.contains(v), "case {case}: value {v} outside {dom}");
    }
}

// ---------------------------------------------------------------------
// Lemma 3.1 (lifting) and Lemma 3.3 (infinite supply) on random traces
// ---------------------------------------------------------------------

fn test_system() -> ParamSystem {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let z = b.var("z");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, y).store(x, 1).store(z, 1);
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.store(y, 1).load(s, x).cas(z, 1, 0);
    let d = d.finish();
    b.build(env, vec![d])
}

/// The `Trace::random` chooser backed by the shared splitmix64 stream.
fn chooser_from(seed: u64) -> impl FnMut(usize) -> usize {
    let mut rng = Rng::seed_from_u64(seed);
    move |k: usize| rng.gen_range(k.max(1))
}

#[test]
fn lemma_3_1_valid_liftings_replay() {
    for seed in 0..48u64 {
        let mut chooser = chooser_from(seed.wrapping_mul(0x9E37_79B9));
        let trace = Trace::random(Instance::new(test_system(), 2), 18, &mut chooser);
        // A spacing lift that respects CAS pairs is RA-valid for every
        // computation; Lemma 3.1 promises the lifted run replays.
        let lift = Lifting::spacing_with_holes(&trace);
        let lifted = lift.apply(&trace);
        assert!(lifted.is_ok(), "seed {seed}: {:?}", lifted.err());
        // Uniform stretches are valid exactly when no CAS pair occurs (the
        // validator must reject the rest up front, never at replay).
        let stretch = 1 + (seed % 4);
        let uniform = Lifting::spacing(&trace, 1 + stretch);
        match uniform.validate(&trace) {
            Ok(()) => assert!(uniform.apply(&trace).is_ok(), "seed {seed}"),
            Err(e) => assert!(
                matches!(e, parra_ra::lifting::LiftingError::CasPairTorn { .. }),
                "seed {seed}: unexpected validation error {e}"
            ),
        }
    }
}

#[test]
fn lemma_3_3_duplication() {
    for seed in 0..48u64 {
        let mut chooser = chooser_from(seed.wrapping_mul(0xC2B2_AE35));
        let trace = Trace::random(Instance::new(test_system(), 2), 22, &mut chooser);
        for idx in env_store_indices(&trace) {
            for placement in [Placement::Adjacent, Placement::High] {
                let dup = duplicate_env_message(&trace, idx, placement)
                    .unwrap_or_else(|e| panic!("seed {seed} idx {idx}: {e}"));
                assert_eq!(dup.original.var, dup.clone.var);
                assert_eq!(dup.original.val, dup.clone.val);
                assert!(dup.trace.last().memory.contains(&dup.original));
                assert!(dup.trace.last().memory.contains(&dup.clone));
                if placement == Placement::High {
                    // Higher than every other message on the variable.
                    for m in dup.trace.last().memory.on_var(dup.clone.var) {
                        if *m != dup.clone {
                            assert!(
                                dup.clone.timestamp() > m.timestamp(),
                                "seed {seed} idx {idx}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn concrete_view_join_monotone_along_traces() {
    // Thread views only ever grow along a computation (the join
    // discipline) — an invariant of the Figure 2 rules.
    for seed in 0..48u64 {
        let mut chooser = chooser_from(seed.wrapping_mul(0x1656_67B1));
        let trace = Trace::random(Instance::new(test_system(), 2), 20, &mut chooser);
        for step in 0..trace.len() {
            let before = trace.config_at(step);
            let after = trace.config_at(step + 1);
            for (b, a) in before.threads.iter().zip(&after.threads) {
                assert!(
                    b.view.leq(&a.view),
                    "seed {seed}: view shrank at step {step}"
                );
            }
            // Memory only grows.
            assert!(after.memory.len() >= before.memory.len(), "seed {seed}");
        }
    }
    let _ = Timestamp::ZERO;
}

// ---------------------------------------------------------------------
// Datalog: linear evaluator agrees with the general one
// ---------------------------------------------------------------------

#[test]
fn linear_and_general_evaluators_agree() {
    use parra_datalog::ast::{Atom, GroundAtom, Program, Term};
    let mut rng = Rng::seed_from_u64(0xDA7A);
    for case in 0..64 {
        let n_edges = 1 + rng.gen_range(11);
        let edges: Vec<(usize, usize)> = (0..n_edges)
            .map(|_| (rng.gen_range(6), rng.gen_range(6)))
            .collect();
        let start = rng.gen_range(6);
        let goal = rng.gen_range(6);

        let mut p = Program::new();
        let reach = p.predicate("reach", 1);
        let consts: Vec<_> = (0..6).map(|i| p.constant(&format!("n{i}"))).collect();
        p.fact(reach, vec![consts[start]]).unwrap();
        // One linear rule per edge: reach(b) :- reach(a).
        for (a, b) in &edges {
            p.rule(
                Atom::new(reach, vec![Term::Const(consts[*b])]),
                vec![Atom::new(reach, vec![Term::Const(consts[*a])])],
            )
            .unwrap();
        }
        let g = GroundAtom::new(reach, vec![consts[goal]]);
        let lin = parra_datalog::linear::LinearEvaluator::new(&p).query(&g);
        let gen = parra_datalog::eval::Evaluator::new(&p).query(&g);
        assert_eq!(lin, gen, "case {case}");
        // And both agree with plain graph reachability.
        let mut seen = [false; 6];
        seen[start] = true;
        loop {
            let mut changed = false;
            for (a, b) in &edges {
                if seen[*a] && !seen[*b] {
                    seen[*b] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        assert_eq!(lin, seen[goal], "case {case}");
    }
}

#[test]
fn cache_schedules_verify() {
    use parra_datalog::ast::{Atom, GroundAtom, Program, Term};
    use parra_datalog::cache::{cache_schedule, verify_schedule};
    for chain_len in 2u32..12 {
        let mut p = Program::new();
        let next = p.predicate("next", 2);
        let reach = p.predicate("reach", 1);
        let consts: Vec<_> = (0..chain_len)
            .map(|i| p.constant(&format!("v{i}")))
            .collect();
        for w in consts.windows(2) {
            p.fact(next, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![consts[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(reach, vec![*consts.last().unwrap()]);
        let sched = cache_schedule(&p, &goal).expect("derivable");
        assert!(verify_schedule(&p, &goal, &sched, sched.peak));
        // The peak stays constant in the chain length (locality).
        assert!(sched.peak <= 3, "chain {chain_len}: peak {}", sched.peak);
    }
}

// ---------------------------------------------------------------------
// Parser/pretty-printer round trip
// ---------------------------------------------------------------------

#[test]
fn pretty_parse_roundtrip() {
    // Build a random small system programmatically, print it, parse it
    // back, and check the printed forms agree (fixed point after one
    // round).
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut b = SystemBuilder::new(3);
        let vars: Vec<VarId> = (0..2).map(|i| b.var(&format!("v{i}"))).collect();
        let mut p = b.program("env");
        let r = p.reg("r0");
        for _ in 0..rng.gen_range(5) + 1 {
            match rng.gen_range(5) {
                0 => {
                    p.load(r, vars[rng.gen_range(2)]);
                }
                1 => {
                    p.store(vars[rng.gen_range(2)], Expr::val(rng.gen_range(3) as u32));
                }
                2 => {
                    p.assume(Expr::reg(r).eq(Expr::val(rng.gen_range(3) as u32)));
                }
                3 => {
                    p.choice(
                        |p| {
                            p.skip();
                        },
                        |p| {
                            p.assert_false();
                        },
                    );
                }
                _ => {
                    p.star(|p| {
                        p.store(vars[0], Expr::val(1));
                    });
                }
            }
        }
        let env = p.finish();
        let sys = b.build(env, vec![]);
        let printed = parra_program::pretty::system_to_string(&sys);
        let reparsed = parra_program::parser::parse_system(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        let reprinted = parra_program::pretty::system_to_string(&reparsed);
        assert_eq!(printed, reprinted, "seed {seed}");
    }
}
