#![warn(missing_docs)]

//! # parra — parameterized safety verification under Release-Acquire
//!
//! A full reproduction of *"Parameterized Verification under Release
//! Acquire is PSPACE-complete"* (Krishna, Godbole, Meyer, Chakraborty —
//! PODC 2022): the simplified semantics, the Datalog-based PSPACE decision
//! procedure, the dependency-graph/cost analysis, and the TQBF hardness
//! reduction — together with the substrates they need (the `Com` language,
//! the concrete RA semantics, a Datalog engine) and the benchmark suite
//! the paper classifies.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`program`] | the `Com` while-language, CFAs, classification, parser |
//! | [`ra`] | concrete RA semantics, bounded exploration, lifting/superposition/supply (Lemmas 3.1–3.3) |
//! | [`simplified`] | the simplified semantics (Section 3), reachability, dependency graphs, cost (§4.3) |
//! | [`datalog`] | Datalog engine, linear Datalog, Cache Datalog, Lemma 4.2 translation |
//! | [`core`] | the verifier: `makeP` encoding and engine orchestration (Section 4) |
//! | [`qbf`] | QBF and the Figure 6 TQBF→PureRA reduction (Section 5) |
//! | [`litmus`] | the benchmark programs the paper classifies |
//! | [`obs`] | zero-dependency metrics, spans, heartbeats, Chrome-trace emission |
//! | [`search`] | deterministic parallel-search layer shared by the state-space engines |
//! | [`fuzz`] | differential fuzzing: system generator, cross-engine oracles, shrinker, corpus |
//! | [`limits`] | resource governance: deadlines, memory budgets, cooperative cancellation |
//! | [`campaign`] | checkpointed, sharded, resumable, diffable verification campaigns |
//! | [`serve`] | long-lived verification service: JSON protocol, admission control, warm caches |
//!
//! # Quickstart
//!
//! ```
//! use parra::prelude::*;
//!
//! let sys = parse_system(
//!     r#"
//!     system {
//!         dom 2;
//!         vars x, y;
//!         env producer {
//!             regs r;
//!             r <- y;
//!             assume r == 1;
//!             x := 1;
//!         }
//!         dis consumer {
//!             regs s;
//!             y := 1;
//!             s <- x;
//!             assume s == 1;
//!             assert false;
//!         }
//!     }
//!     "#,
//! )?;
//! let verifier = Verifier::new(&sys, VerifierOptions::default())?;
//! let result = verifier.run(EngineId::SimplifiedReach);
//! assert_eq!(result.verdict, Verdict::Unsafe);
//! // How many env threads does the bug need? (§4.3)
//! assert_eq!(result.env_thread_bound, Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use parra_campaign as campaign;
pub use parra_core as core;
pub use parra_datalog as datalog;
pub use parra_fuzz as fuzz;
pub use parra_limits as limits;
pub use parra_litmus as litmus;
pub use parra_obs as obs;
pub use parra_program as program;
pub use parra_qbf as qbf;
pub use parra_ra as ra;
pub use parra_search as search;
pub use parra_serve as serve;
pub use parra_simplified as simplified;

/// The most common imports in one place.
pub mod prelude {
    pub use parra_core::engine::{Engine, RaceReport};
    pub use parra_core::verify::{
        aggregate_verdicts, EngineId, RunReport, Verdict, VerificationResult, Verifier,
        VerifierOptions,
    };
    pub use parra_limits::{CancelToken, InterruptReason, ResourceBudget};
    pub use parra_program::builder::{ProgramBuilder, SystemBuilder};
    pub use parra_program::classify::{Complexity, SystemClass};
    pub use parra_program::parser::parse_system;
    pub use parra_program::system::{ParamSystem, Program, ThreadKind};
    pub use parra_program::value::{Dom, Val};
    pub use parra_search::Threads;
    pub use parra_simplified::reach::{ReachLimits, Reachability, SimpTarget};
    pub use parra_simplified::state::Budget;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        assert!(SystemClass::of(&sys).is_decidable_fragment());
        let verifier = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        assert_eq!(
            verifier.run(EngineId::SimplifiedReach).verdict,
            Verdict::Safe
        );
    }
}
