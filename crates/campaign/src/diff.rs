//! Campaign-vs-campaign comparison — crater's toolchain diff, for
//! verification sweeps.
//!
//! Two stores are reduced to `parra report` run records (one per input,
//! last-wins) and pushed through the existing
//! [`parra_obs::report::diff`] machinery, so campaign diffs and flight-
//! recorder diffs agree on what a flip or a regression is. Campaign
//! specifics sit on top:
//!
//! * **verdict flips are always fatal** — an input that answered `SAFE`
//!   in the baseline and `UNSAFE` (or `ERROR`) now fails the gate
//!   unconditionally;
//! * **duration regressions** use a 50 ms floor (vs the report
//!   machinery's 1 ms): campaign inputs run end-to-end portfolios whose
//!   micro-jitter dwarfs single-phase noise, and a gate that flaps on
//!   scheduler luck is worse than none;
//! * **added/removed inputs** are listed but never fatal — campaigns
//!   grow corpora as a matter of course.

use crate::store::Store;
use parra_obs::report::{self as rpt, DiffOptions, DiffReport, ReportSet, RunRecord};
use std::path::Path;

/// The duration-regression floor for campaign diffs, in microseconds.
pub const CAMPAIGN_FLOOR_US: u64 = 50_000;

/// The outcome of diffing two campaign stores.
#[derive(Debug, Clone)]
pub struct CampaignDiff {
    /// The underlying report diff (flips, regressions, coverage).
    pub report: DiffReport,
}

impl CampaignDiff {
    /// Whether the diff gate passes: no verdict flips, no duration
    /// regressions. Added/removed inputs do not fail the gate.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// The report-set projection of a store: one run record per input
/// (last-wins), keyed by input path, with the record's wall clock as
/// the run duration. Errors surface as the pseudo-verdict `ERROR` so an
/// input that *stopped verifying* flips rather than vanishing.
fn report_set(store: &Store) -> Result<ReportSet, String> {
    let mut set = ReportSet::default();
    for (input, r) in store.by_input()? {
        if r.error.is_some() {
            set.errors += 1;
        }
        set.runs.push(RunRecord {
            file: Some(input),
            engine: r.engine.clone(),
            verdict: r.verdict.clone().unwrap_or_else(|| "ERROR".to_string()),
            interrupted: r.interrupted.clone(),
            duration_us: r.duration_us,
            phases: Default::default(),
        });
    }
    Ok(set)
}

/// Diffs two store directories (`a` = baseline, `b` = new).
/// `threshold_pct` overrides the default 25% duration-regression
/// threshold; the floor stays at [`CAMPAIGN_FLOOR_US`].
///
/// # Errors
///
/// Unopenable or corrupt stores.
pub fn diff_stores(a: &Path, b: &Path, threshold_pct: Option<u64>) -> Result<CampaignDiff, String> {
    let (store_a, _) = Store::open(a)?;
    let (store_b, _) = Store::open(b)?;
    let report = rpt::diff(
        &report_set(&store_a)?,
        &report_set(&store_b)?,
        DiffOptions {
            threshold_pct: threshold_pct.unwrap_or(25),
            floor_us: CAMPAIGN_FLOOR_US,
        },
    );
    Ok(CampaignDiff { report })
}

/// Renders a campaign diff as text (a campaign header over the shared
/// report-diff rendering).
pub fn render_diff(a: &Path, b: &Path, d: &CampaignDiff) -> String {
    let mut out = format!(
        "campaign diff: baseline `{}` vs new `{}`\n",
        a.display(),
        b.display()
    );
    out.push_str(&rpt::render_diff(&d.report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Manifest, Record};

    fn store_with(dir: &Path, records: &[Record]) -> Store {
        let _ = std::fs::remove_dir_all(dir);
        let manifest = Manifest {
            engine: "all-engines".into(),
            options_fp: "fp".into(),
            unroll: None,
            timeout_us: None,
            memory_budget: None,
            shard: None,
            inputs: records.iter().map(|r| r.input.clone()).collect(),
        };
        let store = Store::create(dir, &manifest).unwrap();
        for r in records {
            store.append(r).unwrap();
        }
        store
    }

    fn rec(key: &str, input: &str, verdict: &str, dur: u64) -> Record {
        Record {
            key: key.into(),
            input: input.into(),
            engine: "all-engines".into(),
            verdict: Some(verdict.into()),
            interrupted: None,
            error: None,
            duration_us: dur,
        }
    }

    #[test]
    fn flags_flips_regressions_and_coverage() {
        let base = std::env::temp_dir().join(format!("parra-cdiff-a-{}", std::process::id()));
        let new = std::env::temp_dir().join(format!("parra-cdiff-b-{}", std::process::id()));
        store_with(
            &base,
            &[
                rec("k1", "a.ra", "SAFE", 100_000),
                rec("k2", "b.ra", "UNSAFE", 100_000),
                rec("k3", "c.ra", "SAFE", 100_000),
            ],
        );
        store_with(
            &new,
            &[
                rec("k1", "a.ra", "UNSAFE", 100_000), // flip
                rec("k2", "b.ra", "UNSAFE", 300_000), // regression
                rec("k4", "d.ra", "SAFE", 100_000),   // added; c.ra removed
            ],
        );
        let d = diff_stores(&base, &new, None).unwrap();
        assert!(!d.is_clean());
        assert_eq!(d.report.flips.len(), 1);
        assert_eq!(d.report.flips[0].from, "SAFE");
        assert_eq!(d.report.regressions.len(), 1);
        assert_eq!(d.report.only_in_a, vec!["c.ra · all-engines"]);
        assert_eq!(d.report.only_in_b, vec!["d.ra · all-engines"]);
        let text = render_diff(&base, &new, &d);
        assert!(text.contains("FLIP a.ra"));
        assert!(text.contains("SLOWER b.ra"));

        // Sub-floor jitter does not regress.
        store_with(&new, &[rec("k1", "a.ra", "SAFE", 130_000)]);
        store_with(&base, &[rec("k1", "a.ra", "SAFE", 100_000)]);
        let d = diff_stores(&base, &new, None).unwrap();
        assert!(d.is_clean());
        let _ = std::fs::remove_dir_all(&base);
        let _ = std::fs::remove_dir_all(&new);
    }
}
