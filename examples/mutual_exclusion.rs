//! Verifying mutual-exclusion protocols under RA: the flag-based
//! protocols (Peterson, Dekker, Lamport) break; the CAS spinlock holds.
//!
//! Run with: `cargo run --example mutual_exclusion`

use parra::litmus;
use parra::prelude::*;

fn main() {
    let benchmarks = [
        "peterson-ra",
        "peterson-ra-bratosz",
        "dekker",
        "lamport-2-ra",
        "lamport-2-3-ra",
        "spinlock-cas",
    ];
    println!(
        "{:<22} {:<14} {:<9} {:>8} {:>7} {:>12}",
        "benchmark", "class", "verdict", "states", "worlds", "env threads"
    );
    println!("{}", "-".repeat(78));
    for name in benchmarks {
        let bench = litmus::by_name(name).expect("benchmark exists");
        let class = SystemClass::of(&bench.system);
        let verifier =
            Verifier::new(&bench.system, VerifierOptions::default()).expect("decidable class");
        let result = verifier.run(EngineId::SimplifiedReach);
        println!(
            "{:<22} {:<14} {:<9} {:>8} {:>7} {:>12}",
            bench.name,
            format!("{class}").chars().take(14).collect::<String>(),
            result.verdict.to_string(),
            result.stats.states,
            result.stats.worlds,
            result
                .env_thread_bound
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        if result.verdict == Verdict::Unsafe {
            println!("    how the distinguished steps interleave:");
            for line in result.witness_lines.iter().take(6) {
                println!("      {line}");
            }
        }
    }
    println!(
        "\nFlag handshakes do not synchronize under RA (stale reads of the \
         other flag are allowed); CAS acquisition is atomic by timestamp \
         adjacency, so the spinlock is safe for every thread count."
    );
}
