#![warn(missing_docs)]

//! # parra-qbf — quantified boolean formulas and the PSPACE-hardness
//! reduction
//!
//! Section 5 of *"Parameterized Verification under Release Acquire is
//! PSPACE-complete"* (PODC 2022) proves the lower bound by reducing TQBF to
//! parameterized safety verification of *PureRA* programs —
//! `env(nocas, acyc)` systems without registers in which stores can only
//! write the value `1` to an initially-zero memory.
//!
//! This crate provides:
//!
//! * [`formula`] — QBF syntax `∀u₀∃e₁∀u₁…∃eₙ∀uₙ Φ` with a boolean matrix;
//! * [`eval`] — a recursive TQBF evaluator (the ground-truth oracle the
//!   reduction is validated against);
//! * [`reduce`] — the Figure 6 construction: `c_env = c_AG ⊕ c_SATC ⊕
//!   c_FE[0] ⊕ … ⊕ c_FE[n-1] ⊕ c_assert`, with truth values encoded in
//!   views (`vw(t_b) = 0 ⟺ b = 1`);
//! * [`gen`] — structured and random instance generators for tests and
//!   benchmarks.

pub mod eval;
pub mod formula;
pub mod gen;
pub mod reduce;
pub mod rng;

pub use eval::evaluate;
pub use formula::{BoolExpr, QVar, Qbf};
pub use reduce::{reduce_to_purera, Reduction};
