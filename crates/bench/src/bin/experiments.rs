//! Prints every experiment report (the data recorded in `EXPERIMENTS.md`).
//!
//! Run all:      `cargo run --release -p parra-bench --bin experiments`
//! Run one:      `cargo run --release -p parra-bench --bin experiments -- F5`

use parra_bench::all_reports;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    for (id, report) in all_reports() {
        if let Some(f) = &filter {
            if !id.to_lowercase().starts_with(&f.to_lowercase()) {
                continue;
            }
        }
        println!("==============================================================");
        println!("{id}");
        println!("==============================================================");
        println!("{report}");
    }
}
