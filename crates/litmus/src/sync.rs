//! Synchronization-pattern benchmarks: the paper's producer/consumer
//! (Figure 1), RCU, a barrier, and the Chase–Lev deque skeleton.

use crate::{Benchmark, Expected};
use parra_program::builder::SystemBuilder;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;

/// Figure 1's producer/consumer as a plain system: producers (`env`) wait
/// for `y = 1` and write `x := i`; the consumer (`dis`) publishes `y := 1`,
/// then loops reading `x` until it has seen `z` values, then writes
/// `y := 2`. The paper's target (reaching `τ₅`) is modelled as an
/// assertion right after the final store.
pub fn producer_consumer(z: usize) -> (ParamSystem, VarId, Val) {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("producer");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1).store(x, 1);
    let env = env.finish();
    let mut d = b.program("consumer");
    let s = d.reg("s");
    d.store(y, 1);
    for _ in 0..z {
        d.load(s, x).assume_eq(s, 1);
    }
    d.store(y, 2);
    d.assert_false(); // τ₅ reached
    let d = d.finish();
    (b.build(env, vec![d]), y, Val(2))
}

/// The Figure 1 benchmark entry (reaching `τ₅` is possible: "unsafe").
pub fn producer_consumer_benchmark(z: usize) -> Benchmark {
    let (system, _, _) = producer_consumer(z);
    Benchmark {
        name: "producer-consumer",
        source: "the paper, Figure 1",
        class_note: "env(nocas, acyc) ‖ dis(acyc); consumer loop bounded by z",
        expected: Expected::Unsafe,
        system,
    }
}

/// `rcu` (Lahav–Margalit): the reader side of RCU is message passing —
/// the writer initializes the data and then publishes the pointer; a
/// reader that sees the pointer must see the data. Correct under RA —
/// **safe**.
pub fn rcu() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let data = b.var("data");
    let ptr = b.var("ptr");
    let mut env = b.program("reader");
    let r = env.reg("r");
    let s = env.reg("s");
    env.load(r, ptr)
        .assume_eq(r, 1)
        .load(s, data)
        .assume_eq(s, 0) // stale data after seeing the pointer
        .assert_false();
    let env = env.finish();
    let mut d = b.program("writer");
    d.store(data, 1).store(ptr, 1);
    let d = d.finish();
    Benchmark {
        name: "rcu",
        source: "Lahav–Margalit, PLDI 2019 [34]",
        class_note: "env(nocas, acyc) ‖ dis(acyc); fixed-size loop unrolled",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `barrier` (Norris): a one-round sense-reversing barrier. The
/// coordinator observes an arrival, sets the phase, and releases; a
/// participant past the barrier must observe the new phase. Message
/// passing again — **safe**.
pub fn barrier() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let arrived = b.var("arrived");
    let release = b.var("release");
    let phase = b.var("phase");
    let mut env = b.program("participant");
    env.store(arrived, 1);
    env.await_eq(release, 1);
    let s = env.reg("s");
    env.load(s, phase).assume_eq(s, 0).assert_false();
    let env = env.finish();
    let mut d = b.program("coordinator");
    d.await_eq(arrived, 1);
    d.store(phase, 1).store(release, 1);
    let d = d.finish();
    Benchmark {
        name: "barrier",
        source: "Norris model-checker benchmarks [37]",
        class_note: "env(nocas) with wait loops — remodelled: env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// `chase-lev-deque` (Norris): the owner publishes a task (`buffer`, then
/// `bottom`); a thief that observes `bottom = 1` CASes `top` and must see
/// the published task. The paper notes the CAS is outside all loops and
/// the bounded loop unrolls — the CAS goes to a `dis` thief, stealing
/// observers are `env`. **Safe**: seeing `bottom = 1` implies seeing the
/// buffer.
pub fn chase_lev_deque() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let buffer = b.var("buffer");
    let bottom = b.var("bottom");
    let top = b.var("top");
    let mut env = b.program("observer");
    let r = env.reg("r");
    // Passive stealers only inspect the indices.
    env.load(r, top).load(r, bottom);
    let env = env.finish();
    let mut owner = b.program("owner");
    owner.store(buffer, 1).store(bottom, 1);
    let owner = owner.finish();
    let mut thief = b.program("thief");
    let t = thief.reg("t");
    let v = thief.reg("v");
    thief
        .load(t, bottom)
        .assume_eq(t, 1)
        .cas(top, 0, 1)
        .load(v, buffer)
        .assume_eq(v, 0) // stole an unpublished task?
        .assert_false();
    let thief = thief.finish();
    Benchmark {
        name: "chase-lev-deque",
        source: "Norris model-checker benchmarks [37]",
        class_note: "env(nocas, acyc) ‖ dis1(acyc) ‖ dis2(acyc); CAS outside loops",
        expected: Expected::Safe,
        system: b.build(env, vec![owner, thief]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    #[test]
    fn producer_consumer_scales_with_z() {
        let (s1, _, _) = producer_consumer(1);
        let (s5, _, _) = producer_consumer(5);
        assert!(s5.dis[0].com().instruction_count() > s1.dis[0].com().instruction_count());
    }

    #[test]
    fn sync_benchmarks_classify() {
        for bench in [
            producer_consumer_benchmark(2),
            rcu(),
            barrier(),
            chase_lev_deque(),
        ] {
            assert!(
                SystemClass::of(&bench.system).is_decidable_fragment(),
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn chase_lev_cas_is_in_dis() {
        let b = chase_lev_deque();
        assert!(b.system.env.cfa().is_cas_free());
        assert!(!b.system.dis[1].cfa().is_cas_free());
    }
}
