//! Concrete timestamps `Time = ℕ`.
//!
//! The RA semantics totally orders all stores to the same variable by
//! timestamps (Section 2 of the paper). `0` is reserved for the initial
//! messages.

use std::fmt;

/// A concrete timestamp `t ∈ Time = ℕ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp of initial messages.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The immediately following timestamp — the adjacency requirement of
    /// CAS (`ts' = ts + 1`).
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Whether this is the initial timestamp.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(t: u64) -> Self {
        Timestamp(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Timestamp(0) < Timestamp(1));
        assert!(Timestamp(10) > Timestamp(2));
        assert_eq!(Timestamp::ZERO, Timestamp(0));
    }

    #[test]
    fn succ_and_zero() {
        assert_eq!(Timestamp(3).succ(), Timestamp(4));
        assert!(Timestamp::ZERO.is_zero());
        assert!(!Timestamp(1).is_zero());
    }
}
