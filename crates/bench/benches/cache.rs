//! A1: Cache Datalog machinery — schedule construction (Lemma 4.6) and
//! exact bounded-cache search (`⊢ₖ`) on reachability chains, plus the
//! Lemma 4.2 cache-to-linear translation.

use parra_bench::micro::Harness;
use parra_datalog::ast::{Atom, Const, GroundAtom, Program, Term};
use parra_datalog::cache::{cache_schedule, prove_with_cache};
use parra_datalog::linear::LinearEvaluator;
use parra_datalog::translate::cache_to_linear;

fn chain(n: u32) -> (Program, GroundAtom) {
    let mut p = Program::new();
    let next = p.predicate("next", 2);
    let reach = p.predicate("reach", 1);
    let consts: Vec<Const> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
    for w in consts.windows(2) {
        p.fact(next, vec![w[0], w[1]]).unwrap();
    }
    p.fact(reach, vec![consts[0]]).unwrap();
    p.rule(
        Atom::new(reach, vec![Term::Var(1)]),
        vec![
            Atom::new(reach, vec![Term::Var(0)]),
            Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
        ],
    )
    .unwrap();
    (p, GroundAtom::new(reach, vec![*consts.last().unwrap()]))
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("cache_datalog");
    for n in [8u32, 16, 32] {
        let (p, goal) = chain(n);
        group.bench_function(&format!("schedule/{n}"), |b| {
            b.iter(|| std::hint::black_box(cache_schedule(&p, &goal).unwrap().peak))
        });
    }
    for n in [4u32, 6] {
        let (p, goal) = chain(n);
        group.bench_function(&format!("prove_k3_exact/{n}"), |b| {
            b.iter(|| std::hint::black_box(prove_with_cache(&p, &goal, 3)))
        });
    }
    for k in [2usize, 3, 4] {
        let (p, goal) = chain(4);
        group.bench_function(&format!("lemma42_translate_eval/{k}"), |b| {
            b.iter(|| {
                let t = cache_to_linear(&p, &goal, k).unwrap();
                std::hint::black_box(LinearEvaluator::new(&t.program).query(&t.goal))
            })
        });
    }
    group.finish();
}
