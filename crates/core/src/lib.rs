#![warn(missing_docs)]

//! # parra-core — the parameterized RA safety verifier
//!
//! The top of the stack: given a parameterized system
//! `env(nocas) ‖ dis₁(acyc) ‖ … ‖ disₙ(acyc)`, decide whether any instance
//! reaches an assertion violation (Section 4 of *"Parameterized
//! Verification under Release Acquire is PSPACE-complete"*, PODC 2022).
//!
//! Four engines, cross-validating each other:
//!
//! * [`EngineId::SimplifiedReach`] — the direct decision procedure on the
//!   simplified semantics (`parra-simplified`): saturation of the
//!   monotone `env` part interleaved with memoized `dis` search;
//! * [`EngineId::CacheDatalog`] — the paper's `makeP` encoding
//!   ([`makep`]): enumerate the nondeterministic guesses of the `dis`
//!   run skeletons, emit a Datalog program per guess (predicates `emp`,
//!   `etp`, `dmp`, `dtpᵢ`), and evaluate the goal query with the
//!   `parra-datalog` engine — reporting the cache-schedule peak that
//!   realizes Lemma 4.4/4.6;
//! * [`EngineId::LinearDatalog`] — the same encoding taken through the
//!   paper's full certificate route ([`witness`]): the winning guess is
//!   re-evaluated with provenance, its Lemma 4.6 schedule is replayed
//!   under the `⊢ₖ` Cache semantics, and (inside the ≤2-atom-body
//!   fragment) cross-checked via the Lemma 4.2 cache→linear translation;
//! * [`EngineId::BoundedConcrete`] — the concrete-RA baseline
//!   (`parra-ra`): explicit-state exploration of instances with growing
//!   `env` counts; it can only ever return `Unsafe` or `Unknown` for a
//!   parameterized system, which is exactly the paper's motivation.
//!
//! The verifier also surfaces the §4.3 analysis: when a bug is found via
//! the simplified semantics, the dependency-graph cost bound says how many
//! `env` threads suffice to reproduce it.

pub mod cache;
pub mod engine;
pub mod makep;
pub mod verify;
pub mod witness;

pub use cache::VerifierCache;
pub use engine::{Engine, RaceReport, SelectionOutcome};
pub use makep::{DisGuess, Guess, MakeP, MakePLimits};
pub use verify::{
    ConcreteWitness, EngineId, SharedPlanCache, Verdict, VerificationResult, Verifier,
    VerifierOptions,
};
pub use witness::{DatalogWitness, LinearCheck};
