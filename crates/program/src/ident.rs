//! Interned identifiers for shared variables and thread-local registers.
//!
//! Shared variables (`Var` in the paper) are global to a
//! [`ParamSystem`](crate::system::ParamSystem); registers (`Reg`) are local
//! to one program. Both are represented as dense `u32` indices so that the
//! verification engines can use them as array indices; the human-readable
//! names live in a [`SymbolTable`].

use std::collections::HashMap;
use std::fmt;

/// Index of a shared memory variable (`x ∈ Var` in the paper).
///
/// Dense indices `0..n_vars` within one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Index of a thread-local register (`r ∈ Reg` in the paper).
///
/// Dense indices `0..n_regs` within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u32);

impl VarId {
    /// The index as a `usize`, for direct array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RegId {
    /// The index as a `usize`, for direct array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A bidirectional map between names and dense indices.
///
/// Used for both shared-variable and register namespaces. Interning the same
/// name twice returns the same index.
///
/// # Example
///
/// ```
/// use parra_program::ident::SymbolTable;
///
/// let mut t = SymbolTable::new();
/// let x = t.intern("x");
/// assert_eq!(t.intern("x"), x);
/// assert_eq!(t.name(x), "x");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    /// The name for index `i`, if in range.
    pub fn get(&self, i: u32) -> Option<&str> {
        self.names.get(i as usize).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }
}

impl FromIterator<String> for SymbolTable {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut t = SymbolTable::new();
        for name in iter {
            t.intern(&name);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.intern("beta"), b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut t = SymbolTable::new();
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.lookup("y"), None);
        assert_eq!(t.name(x), "x");
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn from_iterator_dedups() {
        let t: SymbolTable = ["a", "b", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(0), "a");
        assert_eq!(t.name(1), "b");
    }

    #[test]
    fn ids_display() {
        assert_eq!(VarId(3).to_string(), "x3");
        assert_eq!(RegId(0).to_string(), "r0");
        assert_eq!(VarId(7).index(), 7);
        assert_eq!(RegId(2).index(), 2);
    }

    #[test]
    fn iter_in_index_order() {
        let mut t = SymbolTable::new();
        t.intern("p");
        t.intern("q");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0, "p"), (1, "q")]);
    }
}
