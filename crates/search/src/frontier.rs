//! Deterministic parallel map over a frontier.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item and returns the results **in item order**,
/// fanning the work out over `workers` OS threads
/// (`std::thread::scope`-based; no pool, no channels).
///
/// `f` receives `(worker, index, item)`: the worker slot (for per-worker
/// metrics), the item's index, and the item. Items are claimed from a
/// shared atomic cursor, so scheduling is dynamic (good for skewed
/// expansion costs), but results are scattered back by index — the output
/// is independent of which worker ran what, which is the property the
/// engines' deterministic merges rely on.
///
/// With `workers <= 1` (or fewer than two items) everything runs inline
/// on the caller's thread in index order: the sequential legacy path, with
/// no thread ever spawned.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn ordered_map<I, O, F>(workers: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, usize, &I) -> O + Sync,
{
    if workers <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, it)| f(0, i, it))
            .collect();
    }
    let n_workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(w, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
    for bucket in buckets {
        for (i, o) in bucket {
            slots[i] = Some(o);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

/// The number of frontier states to buffer per parallel expansion batch.
///
/// Engines expand a round in chunks of this size: large enough to
/// amortize thread spawns and keep `workers` busy under skewed expansion
/// costs, small enough that the buffered successors stay
/// `O(chunk × branching)` however large the frontier grows. Chunks are
/// merged in frontier order, so chunking is invisible in the reports.
pub fn round_chunk(workers: usize) -> usize {
    workers.max(1) * 256
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 4, 7] {
            let out = ordered_map(workers, &items, |_, i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_path_spawns_no_workers() {
        // worker slot is always 0 when workers == 1.
        let items = [10, 20, 30];
        let out = ordered_map(1, &items, |w, _, &x| {
            assert_eq!(w, 0);
            x + 1
        });
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = ordered_map(4, &items, |_, _, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_frontiers() {
        let none: Vec<u8> = vec![];
        assert!(ordered_map(4, &none, |_, _, &x| x).is_empty());
        assert_eq!(ordered_map(4, &[42], |_, _, &x: &i32| x), vec![42]);
    }
}
