//! A std-only micro-benchmark harness.
//!
//! The offline build environment rules out Criterion, so the `benches/`
//! targets (all `harness = false`) drive their workloads through this
//! module instead. The surface deliberately mirrors the slice of the
//! Criterion API the benches used — `group`, `sample_size`,
//! `bench_function`, `Bencher::iter` — so a bench file reads the same
//! either way.
//!
//! Measurement model: each sample times a batch of iterations sized so
//! a batch takes ≳1 ms (calibrated from a warmup run), then the
//! per-iteration times of all samples are summarized as min / median /
//! mean. No outlier rejection, no statistics beyond that — these are
//! smoke-level numbers for tracking gross regressions, not a substitute
//! for a real benchmarking rig.

use std::time::{Duration, Instant};

/// Target wall-clock time for one sample batch.
const TARGET_BATCH: Duration = Duration::from_millis(1);

/// Top-level harness: parses CLI args (`cargo bench` passes `--bench`;
/// the first non-flag argument, if any, filters benchmark ids by
/// substring).
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// A harness configured from `std::env::args`.
    pub fn from_args() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Harness { filter }
    }

    /// Start a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 50,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 50).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the workload.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.samples);
    }

    /// Criterion-compat no-op marking the end of the group.
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; times the workload.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration times (seconds) of each recorded sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f`, recording `sample_size` batched samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup and batch calibration: grow the batch until it takes
        // at least TARGET_BATCH (or a single iteration exceeds it).
        let mut batch = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            if start.elapsed() >= TARGET_BATCH {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples — Bencher::iter never called)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<48} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        sorted.len()
    );
}

/// Human-readable seconds with an adaptive unit.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn unit_formatting_picks_sensible_scales() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_secs(0.0000025), "2.500 µs");
        assert_eq!(fmt_secs(0.0000000025), "2.5 ns");
    }
}
