#![warn(missing_docs)]

//! # parra-ra — the concrete Release-Acquire operational semantics
//!
//! This crate implements Section 2 of *"Parameterized Verification under
//! Release Acquire is PSPACE-complete"* (PODC 2022): the standard
//! operational RA semantics with explicit timestamps, thread views, and a
//! message-pool memory, following Kang et al. / Podkopaev et al. as the
//! paper does.
//!
//! Two complementary machineries live here:
//!
//! 1. **Literal semantics** ([`config`], [`step`], [`trace`]) —
//!    configurations carry numeric timestamps exactly as in the paper's
//!    Figure 2. Computations are first-class values ([`trace::Trace`]) that
//!    can be *replayed* (every transition premise re-checked). On top of
//!    this sit the executable versions of the paper's Section 3 machinery:
//!    timestamp lifting ([`lifting`], Lemma 3.1), superposition
//!    ([`superpose`], Lemma 3.2), and env-message duplication
//!    ([`supply`], the Infinite Supply Lemma 3.3).
//!
//! 2. **Canonical exploration** ([`explore`]) — a bounded explicit-state
//!    model checker for *instances* (fixed thread counts). Timestamps only
//!    matter up to per-variable order and CAS adjacency, so states are
//!    canonicalized to per-variable message sequences with glue marks,
//!    making the bounded state space finite. This engine is the
//!    ground-truth baseline that the simplified semantics is validated
//!    against (Theorem 3.4) and the `BoundedConcrete` verifier backend.

pub mod config;
pub mod explore;
pub mod lifting;
pub mod memory;
pub mod message;
pub mod step;
pub mod superpose;
pub mod supply;
pub mod timestamp;
pub mod trace;
pub mod view;

pub use config::{Config, Instance, LocalConfig, ThreadId};
pub use explore::{ExploreLimits, ExploreOutcome, ExploreReport, Explorer};
pub use memory::Memory;
pub use message::Message;
pub use step::{Action, StepError, Transition};
pub use timestamp::Timestamp;
pub use trace::Trace;
pub use view::View;
