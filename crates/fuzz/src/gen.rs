//! Seed-deterministic random system generation.
//!
//! One configurable generator subsumes the ad-hoc `random_system` helpers
//! that used to be copy-pasted across the integration tests. A
//! [`GenConfig`] fixes the *shape* of the family (variables, domain,
//! program lengths, CAS, loops, how the first `dis` thread signals the
//! goal); a [`SystemGen`] then maps any `u64` seed to one concrete
//! [`ParamSystem`], deterministically — the same `(config, seed)` pair
//! always yields the same system, so every failure is replayable from two
//! integers.

use crate::rng::Rng;
use parra_program::builder::{ProgramBuilder, SystemBuilder};
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;

/// How the first `dis` program ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ending {
    /// `goal := 1` — for Message Generation targets (Theorem 3.4 checks).
    GoalStore,
    /// `assert false` — for the [`Verifier`](parra_core::verify::Verifier),
    /// which works on assertions.
    Assert,
    /// Nothing is appended; the raw random program is used as-is.
    None,
}

/// The shape of a random-system family (the generator's knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Shared variables (`v0 … v{n-1}`) in addition to the goal variable.
    pub n_vars: u32,
    /// Data domain size.
    pub dom: u32,
    /// Instructions per `env` program.
    pub env_len: usize,
    /// Instructions per `dis` program.
    pub dis_len: usize,
    /// Number of distinguished threads.
    pub n_dis: usize,
    /// Allow `cas` in `dis` programs (CAS in `env` leaves the decidable
    /// fragment, Theorem 1.1, so there is no knob for it).
    pub dis_cas: bool,
    /// Allow `choice { … } or { … }` blocks in `env`.
    pub env_choice: bool,
    /// Allow `loop { … }` blocks in `env` (env loops stay decidable).
    pub env_loops: bool,
    /// Allow `loop { … }` blocks in `dis` (leaves the acyclic fragment;
    /// verification then needs unrolling — used by the monotonicity
    /// oracle).
    pub dis_loops: bool,
    /// How the first `dis` program ends.
    pub ending: Ending,
}

impl GenConfig {
    /// The family the engine-agreement sweeps use: small systems with
    /// asserts, CAS allowed, inside the PSPACE fragment of Table 1.
    pub fn agreement() -> GenConfig {
        GenConfig {
            n_vars: 2,
            dom: 2,
            env_len: 3,
            dis_len: 2,
            n_dis: 1,
            dis_cas: true,
            env_choice: true,
            env_loops: false,
            dis_loops: false,
            ending: Ending::Assert,
        }
    }

    /// The family the Theorem 3.4 equivalence sweeps use: goal-store
    /// endings so both the simplified engine and the concrete explorer can
    /// chase the same message.
    pub fn equivalence() -> GenConfig {
        GenConfig {
            n_vars: 2,
            dom: 3,
            env_len: 3,
            dis_len: 3,
            n_dis: 1,
            dis_cas: true,
            env_choice: true,
            env_loops: false,
            dis_loops: false,
            ending: Ending::GoalStore,
        }
    }

    /// A wider, heavier family (the old `stress.rs` shapes): more
    /// variables, larger domain, longer programs, two dis threads.
    pub fn wide() -> GenConfig {
        GenConfig {
            n_vars: 3,
            dom: 3,
            env_len: 4,
            dis_len: 3,
            n_dis: 2,
            dis_cas: true,
            env_choice: true,
            env_loops: false,
            dis_loops: false,
            ending: Ending::Assert,
        }
    }

    /// A family with loops in `dis` — outside the acyclic fragment, so
    /// engines need `unroll_dis`; used by the monotonicity oracle.
    pub fn looping_dis() -> GenConfig {
        GenConfig {
            dis_loops: true,
            ..GenConfig::agreement()
        }
    }

    /// Returns the config with `ending` replaced.
    pub fn with_ending(self, ending: Ending) -> GenConfig {
        GenConfig { ending, ..self }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::agreement()
    }
}

/// One generated fuzz case: the system plus the metadata needed to replay
/// and to run goal-based oracles.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The generated system.
    pub sys: ParamSystem,
    /// The goal variable (`goal`), present for every generated case.
    pub goal: VarId,
    /// The seed that produced this case.
    pub seed: u64,
}

/// A deterministic system generator: `(config, seed) → ParamSystem`.
#[derive(Debug, Clone, Copy)]
pub struct SystemGen {
    cfg: GenConfig,
}

impl SystemGen {
    /// A generator for the family `cfg`.
    pub fn new(cfg: GenConfig) -> SystemGen {
        SystemGen { cfg }
    }

    /// The family configuration.
    pub fn config(&self) -> &GenConfig {
        &self.cfg
    }

    /// Generates the system for `seed`. Identical `(config, seed)` pairs
    /// yield identical systems.
    pub fn case(&self, seed: u64) -> FuzzCase {
        let cfg = &self.cfg;
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = SystemBuilder::new(cfg.dom);
        for i in 0..cfg.n_vars {
            b.var(&format!("v{i}"));
        }
        let goal = b.var("goal");
        let env = self.program(&b, "env", &mut rng, cfg.env_len, false, cfg.env_loops, None);
        let dis: Vec<_> = (0..cfg.n_dis)
            .map(|i| {
                let ending = if i == 0 { cfg.ending } else { Ending::None };
                self.program(
                    &b,
                    &format!("d{i}"),
                    &mut rng,
                    cfg.dis_len,
                    cfg.dis_cas,
                    cfg.dis_loops,
                    Some((goal, ending)),
                )
            })
            .collect();
        FuzzCase {
            sys: b.build(env, dis),
            goal,
            seed,
        }
    }

    /// One random program. `goal` is `Some` for dis programs (carrying the
    /// requested ending); loops/choices nest one level deep to keep state
    /// spaces explorable.
    #[allow(clippy::too_many_arguments)]
    fn program(
        &self,
        b: &SystemBuilder,
        name: &str,
        rng: &mut Rng,
        len: usize,
        cas: bool,
        loops: bool,
        goal: Option<(VarId, Ending)>,
    ) -> parra_program::system::Program {
        let cfg = &self.cfg;
        let mut p = b.program(name);
        let r0 = p.reg("r0");
        let r1 = p.reg("r1");
        let is_env = goal.is_none();
        let emit = |p: &mut ProgramBuilder, rng: &mut Rng| {
            let x = VarId(rng.gen_range(cfg.n_vars.max(1) as usize) as u32);
            let reg = if rng.gen_range(2) == 0 { r0 } else { r1 };
            let kinds = 5 + usize::from(cas);
            match rng.gen_range(kinds) {
                0 => {
                    p.load(reg, x);
                }
                1 => {
                    p.store(x, Expr::val(rng.gen_range(cfg.dom as usize) as u32));
                }
                2 => {
                    p.assume(Expr::reg(reg).eq(Expr::val(rng.gen_range(cfg.dom as usize) as u32)));
                }
                3 => {
                    p.store(x, Expr::reg(reg));
                }
                4 => {
                    p.assign(reg, Expr::val(rng.gen_range(cfg.dom as usize) as u32));
                }
                _ => {
                    let v1 = rng.gen_range(cfg.dom as usize) as u32;
                    let v2 = rng.gen_range(cfg.dom as usize) as u32;
                    p.cas(x, Expr::val(v1), Expr::val(v2));
                }
            }
        };
        let mut i = 0;
        while i < len {
            // Occasionally wrap the next instructions in a structured
            // block instead of emitting them straight-line.
            let structured = rng.gen_range(5) == 0;
            if structured && is_env && cfg.env_choice {
                let l = p.block(|p| emit(p, rng));
                let r = p.block(|p| emit(p, rng));
                p.choice_of(vec![l, r]);
                i += 2;
            } else if structured && loops {
                let body = p.block(|p| emit(p, rng));
                p.push(parra_program::stmt::Com::star(body));
                i += 1;
            } else {
                emit(&mut p, rng);
                i += 1;
            }
        }
        match goal {
            Some((g, Ending::GoalStore)) => {
                p.store(g, Expr::val(1));
            }
            Some((_, Ending::Assert)) => {
                p.assert_false();
            }
            _ => {}
        }
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    #[test]
    fn same_seed_same_system() {
        let g = SystemGen::new(GenConfig::agreement());
        for seed in 0..50 {
            assert_eq!(g.case(seed).sys, g.case(seed).sys, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let g = SystemGen::new(GenConfig::agreement());
        let distinct = (0..20)
            .map(|s| parra_program::pretty::system_to_string(&g.case(s).sys))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 10,
            "only {} distinct systems",
            distinct.len()
        );
    }

    #[test]
    fn agreement_family_stays_in_the_decidable_fragment() {
        let g = SystemGen::new(GenConfig::agreement());
        for seed in 0..50 {
            let case = g.case(seed);
            let class = SystemClass::of(&case.sys);
            assert!(class.is_decidable_fragment(), "seed {seed}: {class}");
            assert!(case.sys.dis[0].com().has_assert(), "seed {seed}");
        }
    }

    #[test]
    fn looping_family_produces_dis_loops_somewhere() {
        let g = SystemGen::new(GenConfig::looping_dis());
        let any_loop = (0..200).any(|s| {
            let case = g.case(s);
            case.sys.dis.iter().any(|p| p.com().has_star())
        });
        assert!(any_loop, "no seed in 0..200 produced a dis loop");
    }

    #[test]
    fn goal_store_family_targets_the_goal_variable() {
        let g = SystemGen::new(GenConfig::equivalence());
        let case = g.case(7);
        assert!(case.sys.dis[0].com().variables().contains(&case.goal));
    }
}
