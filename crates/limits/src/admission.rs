//! Admission control for long-lived hosts: bound *how much* work is in
//! flight before any of it starts, so overload degrades to a structured
//! rejection instead of queue bloat or an OOM kill.
//!
//! [`AdmissionGate`] is the front door of `parra serve`: every request
//! asks for an [`AdmissionPermit`] before it touches a verifier. The gate
//! rejects — without affecting any admitted work — when either
//!
//! * the number of admitted-but-unfinished requests has reached the
//!   configured depth ([`RejectReason::QueueFull`]), or
//! * the process-wide live heap (as reported by [`heap_in_use`], i.e.
//!   only when the binary installed
//!   [`TrackingAlloc`](crate::TrackingAlloc)) is already at the
//!   configured watermark ([`RejectReason::MemoryPressure`]) — new work
//!   would start in an envelope the in-flight work has consumed.
//!
//! Permits release their queue slot on drop, so a panicking request path
//! cannot leak capacity.

use crate::alloc::heap_in_use;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why the gate turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The in-flight depth reached the bound.
    QueueFull {
        /// Admitted-but-unfinished requests at rejection time.
        depth: usize,
        /// The configured bound.
        max: usize,
    },
    /// Live heap is at or past the watermark.
    MemoryPressure {
        /// Live heap bytes at rejection time.
        in_use: usize,
        /// The configured watermark.
        watermark: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, max } => {
                write!(f, "queue full: {depth} in flight (max {max})")
            }
            RejectReason::MemoryPressure { in_use, watermark } => {
                write!(
                    f,
                    "memory pressure: {in_use} bytes live (watermark {watermark})"
                )
            }
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// A bounded-depth, memory-watermarked admission gate. Cloning is cheap
/// and shares the gate (connection handlers each hold a clone).
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    max_in_flight: usize,
    memory_watermark: Option<usize>,
    state: Arc<GateState>,
}

impl AdmissionGate {
    /// A gate admitting at most `max_in_flight` concurrent requests,
    /// optionally refusing new work once live heap reaches
    /// `memory_watermark` bytes.
    pub fn new(max_in_flight: usize, memory_watermark: Option<usize>) -> AdmissionGate {
        AdmissionGate {
            max_in_flight: max_in_flight.max(1),
            memory_watermark,
            state: Arc::new(GateState::default()),
        }
    }

    /// Tries to admit one request. On success the returned permit holds
    /// a queue slot until dropped; on rejection nothing changes for
    /// admitted work.
    pub fn try_admit(&self) -> Result<AdmissionPermit, RejectReason> {
        if let Some(watermark) = self.memory_watermark {
            if let Some(in_use) = heap_in_use() {
                if in_use >= watermark {
                    self.state.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(RejectReason::MemoryPressure { in_use, watermark });
                }
            }
        }
        // Optimistic increment with rollback: two racing admissions at
        // depth max-1 cannot both slip under the bound.
        let prev = self.state.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.max_in_flight {
            self.state.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.state.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(RejectReason::QueueFull {
                depth: prev,
                max: self.max_in_flight,
            });
        }
        self.state.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit {
            state: Arc::clone(&self.state),
        })
    }

    /// Admitted-but-unfinished requests right now.
    pub fn in_flight(&self) -> usize {
        self.state.in_flight.load(Ordering::Acquire)
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.state.admitted.load(Ordering::Relaxed)
    }

    /// Total requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::Relaxed)
    }

    /// The configured depth bound.
    pub fn capacity(&self) -> usize {
        self.max_in_flight
    }
}

/// A held queue slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit {
    state: Arc<GateState>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.state.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_bound_rejects_and_permit_drop_restores_capacity() {
        let gate = AdmissionGate::new(2, None);
        let p1 = gate.try_admit().expect("first");
        let _p2 = gate.try_admit().expect("second");
        assert_eq!(gate.in_flight(), 2);
        let err = gate.try_admit().expect_err("third must be rejected");
        assert_eq!(err, RejectReason::QueueFull { depth: 2, max: 2 });
        assert_eq!(gate.rejected(), 1);
        // Rejection did not disturb admitted work.
        assert_eq!(gate.in_flight(), 2);
        drop(p1);
        assert_eq!(gate.in_flight(), 1);
        let _p3 = gate.try_admit().expect("slot freed by drop");
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn racing_admissions_never_exceed_the_bound() {
        let gate = AdmissionGate::new(4, None);
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Ok(_permit) = gate.try_admit() {
                            peak.fetch_max(gate.in_flight(), Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_depth_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, None);
        assert_eq!(gate.capacity(), 1);
        let _p = gate.try_admit().expect("one slot");
        assert!(gate.try_admit().is_err());
    }
}
