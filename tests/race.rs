//! The engine portfolio race, end-to-end: the raced verdict must equal
//! the sequential `--all-engines` aggregate on every litmus benchmark at
//! every thread count, the winning engine must be reported, and the CLI
//! must reject contradictory engine-selection flags instead of silently
//! ignoring one of them.

use parra::obs::json;
use parra::prelude::*;
use parra_litmus::{all, Expected};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn example(name: &str) -> String {
    format!("{}/examples/systems/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Races the full portfolio on every benchmark in the suite and checks
/// the race verdict against the sequential aggregate over the same
/// engines — at 1 and 4 worker threads. Which engine wins is
/// wall-clock-bound; *that some decisive engine wins*, and the verdict
/// itself, are not.
#[test]
fn raced_verdict_equals_sequential_aggregate_on_the_whole_suite() {
    for threads in [1usize, 4] {
        for bench in all() {
            let options = VerifierOptions {
                threads,
                ..Default::default()
            };
            let sequential = {
                let v = Verifier::new(&bench.system, options.clone())
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
                let verdicts: Vec<(EngineId, Verdict)> = EngineId::ALL
                    .iter()
                    .map(|&e| (e, v.run_isolated(e).verdict))
                    .collect();
                aggregate_verdicts(&verdicts)
                    .unwrap_or_else(|e| panic!("{}: sequential disagreement: {e}", bench.name))
            };
            let v = Verifier::new(&bench.system, options).unwrap();
            let race = v
                .race(&EngineId::ALL)
                .unwrap_or_else(|e| panic!("{}: race disagreement: {e}", bench.name));
            assert_eq!(
                race.verdict, sequential,
                "{} (threads={threads}): raced verdict diverged from the sequential aggregate",
                bench.name
            );
            let expected = match bench.expected {
                Expected::Safe => Verdict::Safe,
                Expected::Unsafe => Verdict::Unsafe,
            };
            assert_eq!(race.verdict, expected, "{}", bench.name);
            // Every benchmark is decided by at least one exact engine, so
            // some racer must have claimed the decisive win — and the
            // report must attribute it.
            let winner = race
                .winner_engine()
                .unwrap_or_else(|| panic!("{}: decisive race without a winner", bench.name));
            let wr = race.winner_result().unwrap();
            assert_eq!(wr.engine, winner, "{}", bench.name);
            assert!(
                wr.verdict.is_decided(),
                "{}: winner's verdict {} is not decisive",
                bench.name,
                wr.verdict
            );
        }
    }
}

/// Regression test: `--engine X --all-engines` used to silently ignore
/// `--engine` (running all four engines as if the flag had not been
/// passed), masking typos. All contradictory engine-selection combos are
/// usage errors now.
#[test]
fn contradictory_engine_selection_flags_are_rejected() {
    let input = example("handshake.ra");
    let cases: &[(&[&str], &str)] = &[
        (
            &["--engine", "datalog", "--all-engines"],
            "--engine and --all-engines conflict",
        ),
        (
            &["--race", "--engine", "datalog"],
            "--engine and --race conflict",
        ),
        (
            &["--all-engines", "--race"],
            "--all-engines and --race conflict",
        ),
    ];
    for (flags, needle) in cases {
        for subcommand in ["verify", "batch"] {
            let out = Command::new(BIN)
                .arg(subcommand)
                .args(*flags)
                .arg(&input)
                .output()
                .expect("binary runs");
            assert_eq!(
                out.status.code(),
                Some(64),
                "{subcommand} {flags:?} should be a usage error; stdout: {}",
                String::from_utf8_lossy(&out.stdout)
            );
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(err.contains(needle), "{subcommand} {flags:?}: {err}");
        }
    }
}

/// `verify --race` end-to-end: the exit code comes from the aggregate
/// verdict, the human output reports each racer plus a `[race]` summary
/// naming the first decisive engine, and losers are marked as portfolio
/// metadata rather than engine answers.
#[test]
fn race_flag_smoke_human_output() {
    let out = Command::new(BIN)
        .args(["verify", "--race", &example("handshake.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "handshake is unsafe; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for engine in [
        "[simplified-reach]",
        "[cache-datalog]",
        "[linear-datalog]",
        "[bounded-concrete]",
    ] {
        assert!(stdout.contains(engine), "missing {engine}: {stdout}");
    }
    assert!(
        stdout.contains("[race] UNSAFE") && stdout.contains("first decisive answer:"),
        "missing race summary: {stdout}"
    );

    let out = Command::new(BIN)
        .args(["verify", "--race", &example("barrier.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "barrier is safe; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("[race] SAFE"));
}

/// `verify --race --json` still emits one report object per engine (in
/// portfolio order), cancelled losers carrying the race note; the race
/// event lands in `--events-out` and `parra report` renders the winner.
#[test]
fn race_flag_json_and_events_pipeline() {
    let events = std::env::temp_dir().join("parra_race_events_test.jsonl");
    let out = Command::new(BIN)
        .args([
            "verify",
            "--race",
            "--json",
            "--events-out",
            events.to_str().unwrap(),
            &example("handshake.ra"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<_> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "one JSON report per racer: {stdout}");
    let mut decisive = 0;
    for (line, expected_engine) in lines.iter().zip([
        "simplified-reach",
        "cache-datalog",
        "linear-datalog",
        "bounded-concrete",
    ]) {
        let v = json::parse(line).expect("JSON report line");
        assert_eq!(v.get("engine").unwrap().as_str(), Some(expected_engine));
        let verdict = v.get("verdict").unwrap().as_str().unwrap().to_string();
        if verdict == "INTERRUPTED(cancelled)" {
            let notes = v.get("notes").unwrap().as_arr().unwrap();
            assert!(
                notes.iter().any(|n| n
                    .as_str()
                    .is_some_and(|s| s.contains("cancelled by portfolio race"))),
                "loser without a race note: {line}"
            );
        } else {
            decisive += 1;
        }
    }
    assert!(decisive >= 1, "someone must have decided: {stdout}");

    // The race event is schema-valid and the dashboard attributes the win.
    let text = std::fs::read_to_string(&events).expect("events written");
    assert!(
        text.lines().any(|l| l.contains("\"kind\":\"race\"")),
        "{text}"
    );
    let check = Command::new(BIN)
        .args(["report", "--check-schema", events.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(
        check.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let report = Command::new(BIN)
        .args(["report", events.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let dash = String::from_utf8_lossy(&report.stdout);
    assert!(dash.contains("portfolio races: 1"), "{dash}");
    assert!(dash.contains("first decisive :"), "{dash}");
    assert!(dash.contains("UNSAFE ×1"), "{dash}");
    std::fs::remove_file(&events).ok();
}

/// A race-wide `--timeout 0` interrupts every racer (exit 2): the race
/// shares one deadline instead of granting each engine its own.
#[test]
fn race_timeout_bounds_the_whole_race() {
    let out = Command::new(BIN)
        .args(["verify", "--race", "--timeout", "0", &example("barrier.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("interrupted (deadline)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("no decisive answer"), "stdout: {stdout}");
}

/// `batch --race` races the portfolio per file: one line per input, the
/// aggregate verdicts unchanged from sequential batch mode.
#[test]
fn batch_race_keeps_verdicts_and_line_shape() {
    let dir = format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"));
    let run = |extra: &[&str]| {
        let out = Command::new(BIN)
            .arg("batch")
            .args(extra)
            .arg(&dir)
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "handshake is unsafe; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(|l| {
                let v = json::parse(l).expect("JSON line");
                (
                    v.get("file").unwrap().as_str().unwrap().to_string(),
                    v.get("verdict").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect::<Vec<_>>()
    };
    let raced = run(&["--race"]);
    let sequential = run(&["--all-engines"]);
    assert_eq!(raced.len(), 5);
    assert_eq!(
        raced, sequential,
        "raced batch verdicts diverged from sequential --all-engines"
    );
}
