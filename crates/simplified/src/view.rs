//! Abstract views `Var → ℕ ⊎ ℕ⁺`.

use crate::timestamp::ATime;
use parra_program::ident::VarId;
use std::fmt;

/// An abstract view, dense over `n_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AView {
    times: Vec<ATime>,
}

impl AView {
    /// The zero view (all coordinates `Int(0)`).
    pub fn zero(n_vars: usize) -> AView {
        AView {
            times: vec![ATime::ZERO; n_vars],
        }
    }

    /// Builds a view from explicit coordinates.
    pub fn from_times(times: Vec<ATime>) -> AView {
        AView { times }
    }

    /// The coordinate for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn get(&self, x: VarId) -> ATime {
        self.times[x.index()]
    }

    /// Sets the coordinate for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn set(&mut self, x: VarId, t: ATime) {
        self.times[x.index()] = t;
    }

    /// Returns a copy with `x ↦ t`.
    pub fn with(&self, x: VarId, t: ATime) -> AView {
        let mut v = self.clone();
        v.set(x, t);
        v
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the view covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Pointwise join (max in the abstract order).
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn join(&self, other: &AView) -> AView {
        assert_eq!(self.len(), other.len(), "joining views of different arity");
        AView {
            times: self
                .times
                .iter()
                .zip(&other.times)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Pointwise order.
    pub fn leq(&self, other: &AView) -> bool {
        self.len() == other.len() && self.times.iter().zip(&other.times).all(|(a, b)| a <= b)
    }

    /// Iterates over `(variable, timestamp)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, ATime)> + '_ {
        self.times
            .iter()
            .enumerate()
            .map(|(i, &t)| (VarId(i as u32), t))
    }
}

impl fmt::Display for AView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ts: &[ATime]) -> AView {
        AView::from_times(ts.to_vec())
    }

    #[test]
    fn join_uses_abstract_order() {
        let a = v(&[ATime::Int(1), ATime::Plus(0)]);
        let b = v(&[ATime::Plus(0), ATime::Int(1)]);
        let j = a.join(&b);
        // Int(1) > Plus(0) in the abstract order.
        assert_eq!(j.get(VarId(0)), ATime::Int(1));
        assert_eq!(j.get(VarId(1)), ATime::Int(1));
    }

    #[test]
    fn join_lattice_laws() {
        let a = v(&[ATime::Plus(2), ATime::Int(0)]);
        let b = v(&[ATime::Int(2), ATime::Plus(1)]);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
        assert!(a.leq(&a.join(&b)));
        assert!(b.leq(&a.join(&b)));
    }

    #[test]
    fn zero_and_with() {
        let z = AView::zero(2);
        assert_eq!(z.get(VarId(1)), ATime::ZERO);
        let w = z.with(VarId(0), ATime::Plus(3));
        assert_eq!(w.get(VarId(0)), ATime::Plus(3));
        assert_eq!(z.get(VarId(0)), ATime::ZERO);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(v(&[ATime::Int(1), ATime::Plus(0)]).to_string(), "⟨1,0⁺⟩");
    }
}
