//! Reachability in the simplified semantics — the direct decision
//! procedure for `env(nocas) ‖ dis₁(acyc) ‖ … ‖ disₙ(acyc)`.
//!
//! The engine interleaves the two halves of the abstraction:
//!
//! * **saturation** of the monotone `env` part between `dis` steps
//!   ([`SimpState::saturate`]) — the fixpoint the paper's Datalog rules
//!   compute;
//! * **search** over the finite `dis` state space (memoized on saturated
//!   states);
//! * **worlds**: the lazily-discovered pre-closure guesses for CAS gaps
//!   (see [`DisSuccessors`](crate::state::DisSuccessors)) — the engine's
//!   rendering of `makeP`'s nondeterministic guess of the `dis` run.
//!
//! For systems in the decidable class with the exact budget, an
//! exhaustive, un-truncated search is a *decision*: `Unsafe` comes with a
//! witness, `Safe` means no instance of any size reaches the target
//! (Theorem 3.4 + Theorem 4.1).

use crate::state::{Budget, DisStep, SimpState};
use parra_obs::Recorder;
use parra_program::classify::SystemClass;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Search limits (safety nets; the abstract domain is finite).
#[derive(Debug, Clone, Copy)]
pub struct ReachLimits {
    /// Cap on saturated `dis`-states per world.
    pub max_states: usize,
    /// Cap on `env_threads.len() + env_msgs.len()` during saturation.
    pub max_env_size: usize,
    /// Cap on the number of pre-closure worlds explored.
    pub max_worlds: usize,
}

impl Default for ReachLimits {
    fn default() -> Self {
        ReachLimits {
            max_states: 100_000,
            max_env_size: 200_000,
            max_worlds: 256,
        }
    }
}

/// What to search for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimpTarget {
    /// An enabled `assert false`.
    AssertViolation,
    /// A generated message `(x, d, _)` — Message Generation (Section 4.1).
    MessageGenerated(VarId, Val),
}

/// The verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachOutcome {
    /// The target is reachable (witness attached).
    Unsafe,
    /// Exhaustive search found no violation. For the decidable class with
    /// the exact budget this is a proof of safety for *all* instances.
    Safe,
    /// A limit was hit; "no violation found" is not a proof.
    Truncated,
}

/// A witness for an `Unsafe` verdict.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The gaps guessed closed up-front in the successful world.
    pub preclosed: Vec<(VarId, u32)>,
    /// The `dis` steps, in order, between saturations.
    pub dis_path: Vec<DisStep>,
    /// The saturated state in which the target holds.
    pub final_state: SimpState,
}

/// The report of a reachability run.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// The verdict.
    pub outcome: ReachOutcome,
    /// Saturated states visited (across all worlds).
    pub states: usize,
    /// Worlds (pre-closure guesses) explored.
    pub worlds: usize,
    /// Largest `env` configuration set observed.
    pub peak_env_configs: usize,
    /// Largest `env` message set observed.
    pub peak_env_msgs: usize,
    /// Witness for `Unsafe`.
    pub witness: Option<Witness>,
}

/// Why a system is outside the engine's supported class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedSystem {
    /// The `env` program contains CAS — parameterized verification is then
    /// undecidable (Theorem 1.1) and the simplified semantics does not
    /// apply.
    EnvHasCas,
}

impl fmt::Display for UnsupportedSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedSystem::EnvHasCas => {
                write!(
                    f,
                    "env program uses CAS: outside the simplified semantics \
                     (undecidable, Theorem 1.1)"
                )
            }
        }
    }
}

impl std::error::Error for UnsupportedSystem {}

/// The reachability engine.
///
/// # Example
///
/// ```
/// use parra_program::builder::SystemBuilder;
/// use parra_program::value::Val;
/// use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
/// use parra_simplified::state::Budget;
///
/// // env: x := 1 — some env thread can always generate (x, 1).
/// let mut b = SystemBuilder::new(2);
/// let x = b.var("x");
/// let mut env = b.program("env");
/// env.store(x, 1);
/// let env = env.finish();
/// let sys = b.build(env, vec![]);
///
/// let budget = Budget::exact(&sys).expect("dis threads are loop-free");
/// let engine = Reachability::new(sys, budget, ReachLimits::default())?;
/// let report = engine.run(SimpTarget::MessageGenerated(x, Val(1)));
/// assert_eq!(report.outcome, ReachOutcome::Unsafe);
/// # Ok::<(), parra_simplified::reach::UnsupportedSystem>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reachability {
    sys: ParamSystem,
    budget: Budget,
    limits: ReachLimits,
    rec: Recorder,
}

impl Reachability {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// Rejects systems whose `env` program uses CAS.
    pub fn new(
        sys: ParamSystem,
        budget: Budget,
        limits: ReachLimits,
    ) -> Result<Reachability, UnsupportedSystem> {
        if !SystemClass::of(&sys).env.nocas {
            return Err(UnsupportedSystem::EnvHasCas);
        }
        Ok(Reachability {
            sys,
            budget,
            limits,
            rec: Recorder::disabled(),
        })
    }

    /// The same engine reporting metrics/spans through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Reachability {
        self.rec = rec;
        self
    }

    /// The system under verification.
    pub fn system(&self) -> &ParamSystem {
        &self.sys
    }

    /// The budget in use.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Runs the search.
    pub fn run(&self, target: SimpTarget) -> ReachReport {
        let span = self.rec.span("reach.run");
        let report = self.run_inner(target);
        span.arg_u64("states", report.states as u64);
        span.arg_u64("worlds", report.worlds as u64);
        span.arg_str("outcome", &format!("{:?}", report.outcome));
        report
    }

    fn run_inner(&self, target: SimpTarget) -> ReachReport {
        let sys = &self.sys;
        let budget = &self.budget;
        let limits = self.limits;

        let c_worlds = self.rec.counter("worlds_explored");
        let c_states = self.rec.counter("states");
        let c_sat_rounds = self.rec.counter("saturation_rounds");
        let c_sat_cfg = self.rec.counter("saturation_new_configs");
        let c_sat_msg = self.rec.counter("saturation_new_msgs");
        let g_msgs = self.rec.gauge("env_msgs");
        let g_cfgs = self.rec.gauge("env_configs");

        let mut worlds_seen: BTreeSet<BTreeSet<(VarId, u32)>> = BTreeSet::new();
        let mut worlds_queue: VecDeque<BTreeSet<(VarId, u32)>> = VecDeque::new();
        worlds_seen.insert(BTreeSet::new());
        worlds_queue.push_back(BTreeSet::new());

        let mut total_states = 0usize;
        let mut worlds = 0usize;
        let mut peak_cfg = 0usize;
        let mut peak_msg = 0usize;
        let mut truncated = false;

        let target_holds = |st: &SimpState| match target {
            SimpTarget::AssertViolation => st.assert_enabled(sys),
            SimpTarget::MessageGenerated(x, d) => st.has_message(x, d),
        };

        while let Some(world) = worlds_queue.pop_front() {
            if worlds >= limits.max_worlds {
                truncated = true;
                break;
            }
            worlds += 1;
            c_worlds.incr();
            self.rec.heartbeat(|| {
                format!("reach: world {worlds}, {total_states} states, peak env msgs {peak_msg}")
            });

            let mut init = SimpState::initial(sys);
            for &(x, g) in &world {
                init.preclose(x, g);
            }
            let (dc, dm) = init.saturate(sys, budget, limits.max_env_size);
            c_sat_rounds.incr();
            c_sat_cfg.add(dc as u64);
            c_sat_msg.add(dm as u64);
            if init.env_threads.len() + init.env_msgs.len() > limits.max_env_size {
                truncated = true;
            }
            peak_cfg = peak_cfg.max(init.env_threads.len());
            peak_msg = peak_msg.max(init.env_msgs.len());
            g_cfgs.record_peak(init.env_threads.len() as u64);
            g_msgs.record_peak(init.env_msgs.len() as u64);

            let mut states: Vec<SimpState> = Vec::new();
            let mut parents: Vec<Option<(u32, DisStep)>> = Vec::new();
            let mut index: HashMap<SimpState, u32> = HashMap::new();
            let mut queue: VecDeque<u32> = VecDeque::new();

            let unwind = |parents: &[Option<(u32, DisStep)>], mut at: u32| {
                let mut path = Vec::new();
                while let Some((prev, step)) = &parents[at as usize] {
                    path.push(step.clone());
                    at = *prev;
                }
                path.reverse();
                path
            };

            index.insert(init.clone(), 0);
            states.push(init.clone());
            parents.push(None);
            queue.push_back(0);
            total_states += 1;
            c_states.incr();

            if target_holds(&init) {
                return ReachReport {
                    outcome: ReachOutcome::Unsafe,
                    states: total_states,
                    worlds,
                    peak_env_configs: peak_cfg,
                    peak_env_msgs: peak_msg,
                    witness: Some(Witness {
                        preclosed: world.iter().copied().collect(),
                        dis_path: Vec::new(),
                        final_state: init,
                    }),
                };
            }

            while let Some(si) = queue.pop_front() {
                let state = states[si as usize].clone();
                let succs = state.dis_successors(sys, budget);
                // Blocked CAS gaps spawn new pre-closure worlds.
                for (x, g) in succs.blocked_gaps {
                    if world.contains(&(x, g)) {
                        continue;
                    }
                    let mut w2 = world.clone();
                    w2.insert((x, g));
                    if worlds_seen.insert(w2.clone()) {
                        worlds_queue.push_back(w2);
                    }
                }
                for (step, mut next) in succs.steps {
                    let (dc, dm) = next.saturate(sys, budget, limits.max_env_size);
                    c_sat_rounds.incr();
                    c_sat_cfg.add(dc as u64);
                    c_sat_msg.add(dm as u64);
                    if next.env_threads.len() + next.env_msgs.len() > limits.max_env_size {
                        truncated = true;
                        continue;
                    }
                    peak_cfg = peak_cfg.max(next.env_threads.len());
                    peak_msg = peak_msg.max(next.env_msgs.len());
                    g_cfgs.record_peak(next.env_threads.len() as u64);
                    g_msgs.record_peak(next.env_msgs.len() as u64);
                    if index.contains_key(&next) {
                        continue;
                    }
                    if states.len() >= limits.max_states {
                        truncated = true;
                        continue;
                    }
                    let ni = states.len() as u32;
                    index.insert(next.clone(), ni);
                    states.push(next.clone());
                    parents.push(Some((si, step)));
                    queue.push_back(ni);
                    total_states += 1;
                    c_states.incr();
                    self.rec.heartbeat(|| {
                        format!(
                            "reach: world {worlds}, {total_states} states, \
                             peak env msgs {peak_msg}"
                        )
                    });
                    if target_holds(&next) {
                        let path = unwind(&parents, ni);
                        return ReachReport {
                            outcome: ReachOutcome::Unsafe,
                            states: total_states,
                            worlds,
                            peak_env_configs: peak_cfg,
                            peak_env_msgs: peak_msg,
                            witness: Some(Witness {
                                preclosed: world.iter().copied().collect(),
                                dis_path: path,
                                final_state: next,
                            }),
                        };
                    }
                }
            }
        }

        ReachReport {
            outcome: if truncated {
                ReachOutcome::Truncated
            } else {
                ReachOutcome::Safe
            },
            states: total_states,
            worlds,
            peak_env_configs: peak_cfg,
            peak_env_msgs: peak_msg,
            witness: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;

    fn limits() -> ReachLimits {
        ReachLimits::default()
    }

    /// env: r <- y; assume r == 1; x := 1
    /// dis: y := 1; s <- x; assume s == 1; assert false
    fn handshake() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.store(y, 1).load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn handshake_is_unsafe() {
        let sys = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        let w = report.witness.unwrap();
        assert!(!w.dis_path.is_empty());
        assert!(w.preclosed.is_empty());
    }

    /// Safe variant: env never stores, so the dis assume s == 1 blocks.
    #[test]
    fn silent_env_is_safe() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.skip();
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Safe);
        assert!(report.witness.is_none());
    }

    /// The RA coherence guarantee: after seeing x = 1 (stored after
    /// y = 1 by the same thread), y = 0 is unreadable.
    #[test]
    fn no_overwritten_reads_across_env_and_dis() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("writer");
        env.store(y, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("reader");
        let rx = d.reg("rx");
        let ry = d.reg("ry");
        d.load(rx, x)
            .assume_eq(rx, 1)
            .load(ry, y)
            .assume_eq(ry, 0)
            .assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Safe);
    }

    /// CAS blocked by env messages in the base world succeeds in the
    /// pre-closed world: dis needs the CAS *and* an env message.
    #[test]
    fn world_restart_enables_cas() {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let f = b.var("f");
        let mut env = b.program("env");
        // env writes x := 2 — anywhere, including the CAS gap.
        env.store(x, 2);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        // dis CAS x from 0 to 1, then must still see an env message x = 2.
        d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).store(f, 1);
        let d = d.finish();
        let mut d2 = b.program("d2");
        let s = d2.reg("s");
        d2.load(s, f).assume_eq(s, 1).assert_false();
        let d2 = d2.finish();
        let sys = b.build(env, vec![d, d2]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        // The witness world should have pre-closed gap 0 of x... unless the
        // base world already worked (env can choose gap 1 or 2 and leave
        // gap 0 free — but saturation puts messages in *all* gaps, so the
        // pre-closure is required).
        let w = report.witness.unwrap();
        assert!(w.preclosed.contains(&(x, 0)));
        assert!(report.worlds > 1);
    }

    #[test]
    fn env_cas_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let err =
            Reachability::new(sys.clone(), Budget::uniform_for(&sys, 1), limits()).unwrap_err();
        assert_eq!(err, UnsupportedSystem::EnvHasCas);
    }

    /// Unbounded env loops are handled exactly (no depth bound needed):
    /// env: loop { r <- x; x := r + 1 } over a small modular domain.
    #[test]
    fn env_loops_saturate() {
        let mut b = SystemBuilder::new(4);
        let x = b.var("x");
        let goal = b.var("goal");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.star(|p| {
            p.load(r, x);
            p.store(
                x,
                parra_program::expr::Expr::reg(r).add(parra_program::expr::Expr::val(1)),
            );
        });
        env.load(r, x).assume_eq(r, 3).store(goal, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let budget = Budget::exact(&sys).unwrap(); // no dis stores: T = 0
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(goal, Val(1)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
    }

    /// Exhausting the state cap yields Truncated, never a silent Safe.
    #[test]
    fn tight_limits_truncate() {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        d.store(x, 2).load(r, x).store(x, 1);
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let tight = ReachLimits {
            max_states: 2,
            max_env_size: 200_000,
            max_worlds: 256,
        };
        let engine = Reachability::new(sys, budget, tight).unwrap();
        // The never-generated value forces exploring everything; the cap
        // cuts it off.
        let report = engine.run(SimpTarget::MessageGenerated(x, Val(7)));
        assert_eq!(report.outcome, ReachOutcome::Truncated);
    }

    /// The initial value d_init = 0 is trivially generated.
    #[test]
    fn init_value_always_generated() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        let sys = b.build(env, vec![]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(x, Val(0)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        assert!(report.witness.unwrap().dis_path.is_empty());
    }

    /// Figure 3's point: the consumer can loop more times than there are
    /// producers — z > l is feasible because env messages are re-readable
    /// (clones). Here dis reads x = 1 twice though each env thread writes
    /// it once.
    #[test]
    fn dis_rereads_env_messages() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("producer");
        env.store(x, 1);
        let env = env.finish();
        let mut d = b.program("consumer");
        let r = d.reg("r");
        d.load(r, x)
            .assume_eq(r, 1)
            .load(r, x)
            .assume_eq(r, 1)
            .assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
    }
}
