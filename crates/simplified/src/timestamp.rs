//! The timestamp abstraction `ℕ ⊎ ℕ⁺` (Section 3.4).
//!
//! Abstract time is ordered `0 < 0⁺ < 1 < 1⁺ < 2 < …`: each integer
//! timestamp `ts` (a *slot* for at most one `dis` store) is followed by the
//! *gap* `ts⁺`, shared by arbitrarily many `env` stores.

use std::fmt;

/// An abstract timestamp: a `dis` slot `Int(i)` or an `env` gap `Plus(i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ATime {
    /// The integer timestamp `i` — used by `dis` stores (and the initial
    /// messages at `Int(0)`).
    Int(u32),
    /// The timestamp `i⁺`, strictly between `i` and `i+1` — used by `env`
    /// stores.
    Plus(u32),
}

impl ATime {
    /// The timestamp of initial messages.
    pub const ZERO: ATime = ATime::Int(0);

    /// The integer part: `floor(i) = floor(i⁺) = i`.
    pub fn floor(self) -> u32 {
        match self {
            ATime::Int(i) | ATime::Plus(i) => i,
        }
    }

    /// Whether this is a gap timestamp `i⁺`.
    pub fn is_plus(self) -> bool {
        matches!(self, ATime::Plus(_))
    }

    /// Whether this is the initial timestamp `0`.
    pub fn is_zero(self) -> bool {
        self == ATime::ZERO
    }

    /// Sort key realizing `0 < 0⁺ < 1 < 1⁺ < …`.
    fn key(self) -> u64 {
        match self {
            ATime::Int(i) => 2 * i as u64,
            ATime::Plus(i) => 2 * i as u64 + 1,
        }
    }

    /// The *gap ceiling*: the smallest gap index `g` such that an event in
    /// gap `g⁺` is at-or-above this timestamp. Both `Int(i)` and `Plus(i)`
    /// give `i` — a clone placed in gap `i` is above `Int(i)` and
    /// order-equivalent to `Plus(i)`.
    pub fn gap_ceiling(self) -> u32 {
        self.floor()
    }
}

impl PartialOrd for ATime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ATime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for ATime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ATime::Int(i) => write!(f, "{i}"),
            ATime::Plus(i) => write!(f, "{i}⁺"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_interleaves_slots_and_gaps() {
        assert!(ATime::Int(0) < ATime::Plus(0));
        assert!(ATime::Plus(0) < ATime::Int(1));
        assert!(ATime::Int(1) < ATime::Plus(1));
        assert!(ATime::Plus(1) < ATime::Int(2));
        assert!(ATime::Plus(3) > ATime::Int(3));
        assert!(ATime::Plus(3) < ATime::Int(4));
    }

    #[test]
    fn order_is_total_on_samples() {
        let mut v = vec![
            ATime::Plus(2),
            ATime::Int(0),
            ATime::Int(3),
            ATime::Plus(0),
            ATime::Int(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                ATime::Int(0),
                ATime::Plus(0),
                ATime::Int(2),
                ATime::Plus(2),
                ATime::Int(3),
            ]
        );
    }

    #[test]
    fn floor_and_predicates() {
        assert_eq!(ATime::Int(5).floor(), 5);
        assert_eq!(ATime::Plus(5).floor(), 5);
        assert!(ATime::Plus(0).is_plus());
        assert!(!ATime::Int(0).is_plus());
        assert!(ATime::ZERO.is_zero());
        assert!(!ATime::Plus(0).is_zero());
    }

    #[test]
    fn gap_ceiling() {
        // A clone in gap i is above Int(i) and equivalent to Plus(i).
        assert_eq!(ATime::Int(3).gap_ceiling(), 3);
        assert_eq!(ATime::Plus(3).gap_ceiling(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(ATime::Int(7).to_string(), "7");
        assert_eq!(ATime::Plus(7).to_string(), "7⁺");
    }
}
