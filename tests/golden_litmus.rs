//! Golden-verdict snapshot: every litmus benchmark × all four engines,
//! with the expected verdict per engine and the §4.3 env-thread bound
//! pinned in one table.
//!
//! The table is the repo's behavioural contract: an engine change that
//! flips any verdict (or the thread bound) shows up as a readable diff
//! here, not as a silent drift. To re-pin after an *intended* change,
//! run
//!
//! ```text
//! cargo test --test golden_litmus -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_litmus::all;

/// One pinned row: benchmark name, then the verdict of each engine in
/// [`ENGINES`] order, then the §4.3 env-thread bound reported by
/// `simplified-reach` (`-` when none, i.e. safe benchmarks).
#[rustfmt::skip]
const GOLDEN: &[(&str, &str, &str, &str, &str, &str)] = &[
    // (name, simplified-reach, cache-datalog, linear-datalog, bounded-concrete, env-bound)
    ("producer-consumer", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "3"),
    ("peterson-ra", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "2"),
    ("peterson-ra-bratosz", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "2"),
    ("dekker", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "2"),
    ("lamport-2-ra", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "4"),
    ("lamport-2-3-ra", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "4"),
    ("spinlock-cas", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("rcu", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("barrier", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("chase-lev-deque", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("histogram", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("kmeans", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("linear-regression", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("matrix-multiply", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("pca", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("string-match", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("word-count", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("sort-pthread", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("mp", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("sb", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "0"),
    ("lb", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("iriw", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "2"),
    ("wrc", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("corr", "SAFE", "SAFE", "SAFE", "UNKNOWN", "-"),
    ("corr-parameterized", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "2"),
    ("2+2w", "UNSAFE", "UNSAFE", "UNSAFE", "UNSAFE", "0"),
];

const ENGINES: [EngineId; 4] = [
    EngineId::SimplifiedReach,
    EngineId::CacheDatalog,
    EngineId::LinearDatalog,
    EngineId::BoundedConcrete,
];

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Safe => "SAFE",
        Verdict::Unsafe => "UNSAFE",
        Verdict::Unknown => "UNKNOWN",
        // Golden runs are ungoverned, so interruption means a bug.
        Verdict::Interrupted(_) => "INTERRUPTED",
    }
}

/// Runs the full matrix and renders one row per benchmark.
fn actual_rows() -> Vec<(String, [String; 5])> {
    all()
        .iter()
        .map(|bench| {
            let verifier = Verifier::new(&bench.system, VerifierOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            let mut cells: Vec<String> = Vec::new();
            let mut env_bound = "-".to_string();
            for engine in ENGINES {
                let r = verifier.run(engine);
                cells.push(verdict_str(r.verdict).to_string());
                if engine == EngineId::SimplifiedReach {
                    if let Some(b) = r.env_thread_bound {
                        env_bound = b.to_string();
                    }
                }
            }
            cells.push(env_bound);
            let cells: [String; 5] = cells.try_into().unwrap();
            (bench.name.to_string(), cells)
        })
        .collect()
}

fn render(rows: &[(String, [String; 5])]) -> String {
    let mut out = String::new();
    for (name, c) in rows {
        out.push_str(&format!(
            "    (\"{name}\", \"{}\", \"{}\", \"{}\", \"{}\", \"{}\"),\n",
            c[0], c[1], c[2], c[3], c[4]
        ));
    }
    out
}

#[test]
fn golden_verdicts_match() {
    let rows = actual_rows();
    let mut drift: Vec<String> = Vec::new();

    if GOLDEN.len() != rows.len() {
        drift.push(format!(
            "table has {} rows, suite has {} benchmarks",
            GOLDEN.len(),
            rows.len()
        ));
    }
    for (name, actual) in &rows {
        match GOLDEN.iter().find(|g| g.0 == name) {
            None => drift.push(format!("{name}: missing from GOLDEN")),
            Some(g) => {
                let pinned = [g.1, g.2, g.3, g.4, g.5];
                let labels = [
                    "simplified-reach",
                    "cache-datalog",
                    "linear-datalog",
                    "bounded-concrete",
                    "env-bound",
                ];
                for (i, label) in labels.iter().enumerate() {
                    if pinned[i] != actual[i] {
                        drift.push(format!(
                            "{name} / {label}: pinned {}, got {}",
                            pinned[i], actual[i]
                        ));
                    }
                }
            }
        }
    }
    for g in GOLDEN {
        if !rows.iter().any(|(name, _)| name == g.0) {
            drift.push(format!("{}: in GOLDEN but not in the suite", g.0));
        }
    }

    if !drift.is_empty() {
        let mut msg = String::from("golden verdict table drifted:\n");
        for d in &drift {
            msg.push_str(&format!("  {d}\n"));
        }
        msg.push_str("\nactual table (paste over GOLDEN if the change is intended):\n");
        msg.push_str(&render(&rows));
        panic!("{msg}");
    }
}
