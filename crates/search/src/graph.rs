//! The search graph: states, parent edges, dedup index, witness unwind.

use crate::shard::ShardedIndex;
use std::hash::Hash;

/// The bookkeeping both engines share: a dense vector of discovered
/// states, a parent pointer + edge label per state (for witness
/// reconstruction), and a [`ShardedIndex`] for dedup.
///
/// Ids are assigned in insertion order, and insertions happen only in the
/// engines' sequential merge phases — in frontier order — so ids, parents,
/// and therefore unwound witnesses are identical however many workers
/// expanded the frontier.
#[derive(Debug, Clone)]
pub struct SearchGraph<S, L> {
    states: Vec<S>,
    parents: Vec<Option<(u32, L)>>,
    index: ShardedIndex<S>,
}

impl<S: Clone + Hash + Eq, L: Clone> SearchGraph<S, L> {
    /// An empty graph whose index uses at least `n_shards` shards.
    pub fn new(n_shards: usize) -> SearchGraph<S, L> {
        SearchGraph {
            states: Vec::new(),
            parents: Vec::new(),
            index: ShardedIndex::new(n_shards),
        }
    }

    /// Number of states discovered.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The discovered states, in id order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The state with id `id`.
    pub fn state(&self, id: u32) -> &S {
        &self.states[id as usize]
    }

    /// Whether `s` has been discovered. Safe to call from expansion
    /// workers (they hold `&SearchGraph`; the index is frozen while they
    /// run).
    pub fn contains(&self, s: &S) -> bool {
        self.index.contains(s)
    }

    /// Shard imbalance of the dedup index, in permille
    /// (see [`ShardedIndex::imbalance_permille`]).
    pub fn shard_imbalance_permille(&self) -> u64 {
        self.index.imbalance_permille()
    }

    /// Inserts a new state with its parent edge, returning the assigned
    /// id. The caller must have ruled out duplicates via
    /// [`contains`](Self::contains).
    pub fn insert(&mut self, s: S, parent: Option<(u32, L)>) -> u32 {
        debug_assert!(!self.index.contains(&s), "insert of a duplicate state");
        let id = self.states.len() as u32;
        self.index.insert(s.clone(), id);
        self.states.push(s);
        self.parents.push(parent);
        id
    }

    /// The edge labels from the root to state `at`, in execution order —
    /// the witness path.
    pub fn unwind(&self, mut at: u32) -> Vec<L> {
        let mut path = Vec::new();
        while let Some((prev, label)) = &self.parents[at as usize] {
            path.push(label.clone());
            at = *prev;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_insertion_order_and_unwind_reverses_parents() {
        let mut g: SearchGraph<&'static str, char> = SearchGraph::new(2);
        let root = g.insert("root", None);
        assert_eq!(root, 0);
        let a = g.insert("a", Some((root, 'a')));
        let b = g.insert("b", Some((root, 'b')));
        let ab = g.insert("ab", Some((a, 'b')));
        assert_eq!((a, b, ab), (1, 2, 3));
        assert_eq!(g.len(), 4);
        assert!(g.contains(&"ab"));
        assert!(!g.contains(&"ba"));
        assert_eq!(g.unwind(ab), vec!['a', 'b']);
        assert_eq!(g.unwind(b), vec!['b']);
        assert_eq!(g.unwind(root), Vec::<char>::new());
        assert_eq!(*g.state(ab), "ab");
    }
}
