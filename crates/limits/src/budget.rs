//! The shared resource budget: deadline, memory limit, cancellation.

use crate::alloc::{heap_in_use, heap_peak};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed run stopped before reaching a verdict.
///
/// Ordering of checks is fixed (cancelled, then deadline, then memory) so
/// that a run tripping several limits at once reports deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The tracked heap exceeded the memory limit.
    Memory,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
}

impl InterruptReason {
    /// Stable lower-case name used in JSON reports and obs counters.
    pub fn as_str(self) -> &'static str {
        match self {
            InterruptReason::Deadline => "deadline",
            InterruptReason::Memory => "memory",
            InterruptReason::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One token's own cancellation state: a request generation counter and
/// the generation up to which requests have been consumed.
#[derive(Debug, Default)]
struct CancelFlag {
    requested: AtomicU64,
    acknowledged: AtomicU64,
}

impl CancelFlag {
    fn pending(&self) -> bool {
        self.requested.load(Ordering::Acquire) > self.acknowledged.load(Ordering::Acquire)
    }
}

/// A shared flag for cooperative cancellation, organised as a tree.
///
/// Clones share the same underlying flag; cancelling any clone cancels
/// all of them. Engines observe cancellation at round granularity via
/// [`ResourceBudget::check`].
///
/// Tokens are hierarchical: [`child`](CancelToken::child) derives a
/// token that observes the parent's cancellation (and every ancestor's)
/// but whose own [`cancel`](CancelToken::cancel) never propagates
/// upward. This is how one verification run — or one portfolio race —
/// scopes cancellation: the scheduler cancels a race-local child to stop
/// the losing engines without tripping the caller's token.
///
/// A cancellation request is *consumed* with
/// [`acknowledge`](CancelToken::acknowledge): once the owner of a token
/// has observed and handled a request (e.g. reported the run as
/// interrupted), acknowledging it re-arms the token so later runs under
/// the same token proceed. Requests are counted, so a cancel that
/// arrives after an acknowledge is a fresh, observable request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    own: Arc<CancelFlag>,
    /// Root-first chain of ancestor flags, excluding `own`.
    ancestors: Arc<[Arc<CancelFlag>]>,
}

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every clone and every descendant observes
    /// it. Ancestors do not.
    pub fn cancel(&self) {
        self.own.requested.fetch_add(1, Ordering::Release);
    }

    /// Whether an unconsumed cancellation request is pending on this
    /// token or any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        self.own.pending() || self.ancestors.iter().any(|a| a.pending())
    }

    /// Derives a child token: it observes this token's cancellation, but
    /// cancelling the child is invisible here.
    pub fn child(&self) -> CancelToken {
        let mut chain = Vec::with_capacity(self.ancestors.len() + 1);
        chain.extend(self.ancestors.iter().cloned());
        chain.push(Arc::clone(&self.own));
        CancelToken {
            own: Arc::default(),
            ancestors: chain.into(),
        }
    }

    /// Consumes every cancellation request made *on this token* so far,
    /// re-arming it for subsequent runs. Pending requests on ancestors
    /// are untouched (they belong to the ancestors' owners). No-op if
    /// nothing is pending. A concurrent `cancel` racing with the
    /// acknowledge may be consumed along with the ones already observed.
    pub fn acknowledge(&self) {
        self.own.acknowledged.store(
            self.own.requested.load(Ordering::Acquire),
            Ordering::Release,
        );
    }
}

/// A resource budget for one engine run.
///
/// The default budget is unlimited: every [`check`](ResourceBudget::check)
/// passes and a governed run is indistinguishable from an ungoverned one.
/// Budgets are cheap to clone (an `Instant`, a `usize`, and an `Arc`) and
/// are handed by value to worker threads.
///
/// # Example
///
/// ```
/// use parra_limits::{InterruptReason, ResourceBudget};
/// use std::time::Duration;
///
/// let gov = ResourceBudget::unlimited().with_deadline(Duration::ZERO);
/// assert_eq!(gov.check(), Err(InterruptReason::Deadline));
/// assert!(ResourceBudget::unlimited().check().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceBudget {
    deadline: Option<Instant>,
    memory_limit: Option<usize>,
    cancel: Option<CancelToken>,
}

impl ResourceBudget {
    /// A budget that never interrupts. Identical to `Default::default()`.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::default()
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> ResourceBudget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute wall-clock deadline.
    ///
    /// Long-lived callers (the fuzz runner, `parra serve`) anchor a
    /// `--timeout` at *request admission* rather than at flag-parse /
    /// process-start time: capture `Instant::now()` when the work is
    /// admitted and pass `admitted + timeout` here. Building the budget
    /// early with [`with_deadline`](ResourceBudget::with_deadline) would
    /// silently shrink the window for every request after the first.
    pub fn with_deadline_at(mut self, at: Instant) -> ResourceBudget {
        self.deadline = Some(at);
        self
    }

    /// Sets an approximate limit on live heap bytes.
    ///
    /// Enforced only when the process installed [`TrackingAlloc`]
    /// (crate::TrackingAlloc) as its global allocator; otherwise heap
    /// usage is unknown and the limit soundly never trips.
    pub fn with_memory_limit(mut self, bytes: usize) -> ResourceBudget {
        self.memory_limit = Some(bytes);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> ResourceBudget {
        self.cancel = Some(token);
        self
    }

    /// Whether every check trivially passes.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.memory_limit.is_none() && self.cancel.is_none()
    }

    /// Checks the budget; `Err` names the first exhausted resource.
    ///
    /// Side-effect free: a run that completes under a budget takes exactly
    /// the same steps as an unlimited run. Engines call this once per
    /// round, so the cost is a couple of atomic loads plus (when a
    /// deadline is set) one `Instant::now()`.
    pub fn check(&self) -> Result<(), InterruptReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(InterruptReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(InterruptReason::Deadline);
            }
        }
        if let Some(limit) = self.memory_limit {
            if let Some(in_use) = heap_in_use() {
                if in_use > limit {
                    return Err(InterruptReason::Memory);
                }
            }
        }
        Ok(())
    }

    /// A point-in-time measurement of how much budget remains — polled by
    /// the flight recorder into events' volatile sections.
    pub fn headroom(&self) -> Headroom {
        Headroom {
            deadline_left_us: self
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_micros() as u64),
            memory_left_bytes: match (self.memory_limit, heap_in_use()) {
                (Some(limit), Some(in_use)) => Some(limit.saturating_sub(in_use) as u64),
                _ => None,
            },
            heap_in_use_bytes: heap_in_use().map(|b| b as u64),
            heap_peak_bytes: heap_peak().map(|b| b as u64),
        }
    }
}

/// Remaining budget at a point in time (see [`ResourceBudget::headroom`]).
///
/// All values are wall-clock / environment dependent, so the flight
/// recorder only ever places them in an event's `volatile` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Headroom {
    /// Microseconds until the deadline (`None` without a deadline).
    pub deadline_left_us: Option<u64>,
    /// Bytes left under the memory limit (`None` without a limit or a
    /// tracking allocator).
    pub memory_left_bytes: Option<u64>,
    /// Current live heap bytes (`None` without a tracking allocator).
    pub heap_in_use_bytes: Option<u64>,
    /// Process-lifetime heap high-watermark.
    pub heap_peak_bytes: Option<u64>,
}

impl Headroom {
    /// The headroom as `(name, value)` pairs for an event's volatile
    /// section, skipping unknown dimensions.
    pub fn volatile_fields(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        if let Some(v) = self.deadline_left_us {
            out.push(("deadline_left_us", v));
        }
        if let Some(v) = self.memory_left_bytes {
            out.push(("memory_left_bytes", v));
        }
        if let Some(v) = self.heap_in_use_bytes {
            out.push(("heap_bytes", v));
        }
        if let Some(v) = self.heap_peak_bytes {
            out.push(("heap_peak_bytes", v));
        }
        out
    }
}

/// Parses a human byte size: a decimal integer with an optional
/// `K`/`M`/`G` (or `KB`/`MB`/`GB`, case-insensitive) suffix.
///
/// ```
/// use parra_limits::parse_byte_size;
/// assert_eq!(parse_byte_size("512"), Some(512));
/// assert_eq!(parse_byte_size("64K"), Some(64 * 1024));
/// assert_eq!(parse_byte_size("2gb"), Some(2 * 1024 * 1024 * 1024));
/// assert_eq!(parse_byte_size("lots"), None);
/// ```
pub fn parse_byte_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let digits_end = s
        .char_indices()
        .find(|(_, c)| !c.is_ascii_digit())
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if digits_end == 0 {
        return None;
    }
    let value: usize = s[..digits_end].parse().ok()?;
    let mult: usize = match s[digits_end..].trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" => 1024,
        "m" | "mb" => 1024 * 1024,
        "g" | "gb" => 1024 * 1024 * 1024,
        _ => return None,
    };
    value.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let gov = ResourceBudget::unlimited();
        assert!(gov.is_unlimited());
        assert_eq!(gov.check(), Ok(()));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let gov = ResourceBudget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(gov.check(), Err(InterruptReason::Deadline));
    }

    #[test]
    fn absolute_deadline_anchors_where_told() {
        // A deadline anchored in the past trips immediately; one anchored
        // in the future passes — independent of when the budget value
        // itself was constructed.
        let base = Instant::now();
        let spent = ResourceBudget::unlimited().with_deadline_at(base);
        assert_eq!(spent.check(), Err(InterruptReason::Deadline));
        let live = ResourceBudget::unlimited().with_deadline_at(base + Duration::from_secs(3600));
        assert_eq!(live.check(), Ok(()));
        assert!(!live.is_unlimited());
    }

    #[test]
    fn generous_deadline_passes() {
        let gov = ResourceBudget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(gov.check(), Ok(()));
    }

    #[test]
    fn cancellation_is_shared_and_wins_over_deadline() {
        let token = CancelToken::new();
        let gov = ResourceBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_cancel(token.clone());
        // Deadline already passed, but not yet cancelled: deadline reported.
        assert_eq!(gov.check(), Err(InterruptReason::Deadline));
        token.cancel();
        assert_eq!(gov.check(), Err(InterruptReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());

        // Cancelling the child is invisible to the parent (race-scoped
        // cancellation must never trip the caller's token).
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());

        // Cancelling the parent reaches the child — and a grandchild.
        let child2 = parent.child();
        let grandchild = child2.child();
        parent.cancel();
        assert!(child2.is_cancelled());
        assert!(grandchild.is_cancelled());
    }

    #[test]
    fn acknowledge_consumes_request_and_rearms() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        token.acknowledge();
        assert!(!token.is_cancelled(), "acknowledged request is consumed");
        // A later request is a fresh, observable one.
        token.cancel();
        assert!(token.is_cancelled());
        // Acknowledging an un-cancelled token is a no-op.
        token.acknowledge();
        token.acknowledge();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn acknowledge_on_child_does_not_consume_parent_request() {
        let parent = CancelToken::new();
        let child = parent.child();
        parent.cancel();
        assert!(child.is_cancelled());
        // The child cannot consume its parent's request; only the
        // parent's owner may.
        child.acknowledge();
        assert!(child.is_cancelled());
        assert!(parent.is_cancelled());
        parent.acknowledge();
        assert!(!child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn clones_share_state_with_children_too() {
        let parent = CancelToken::new();
        let child = parent.child();
        let child_clone = child.clone();
        child.cancel();
        assert!(child_clone.is_cancelled());
        child_clone.acknowledge();
        assert!(!child.is_cancelled());
    }

    #[test]
    fn memory_limit_without_tracking_allocator_never_trips() {
        // This test binary does not install TrackingAlloc, so heap usage
        // is unknown and the limit must not trip (soundness: limits only
        // ever stop a run early, they never invent an interruption).
        let gov = ResourceBudget::unlimited().with_memory_limit(1);
        assert_eq!(gov.check(), Ok(()));
    }

    #[test]
    fn headroom_reports_remaining_deadline_and_skips_unknowns() {
        let h = ResourceBudget::unlimited().headroom();
        assert_eq!(h.deadline_left_us, None);
        // No tracking allocator in this test binary: memory dims unknown.
        assert_eq!(h.memory_left_bytes, None);

        let h = ResourceBudget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .headroom();
        let left = h.deadline_left_us.expect("deadline set");
        assert!(left > 3_000_000_000, "almost the whole hour should remain");
        let fields = h.volatile_fields();
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].0, "deadline_left_us");

        let h = ResourceBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .headroom();
        assert_eq!(h.deadline_left_us, Some(0));
    }

    #[test]
    fn byte_size_parsing() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("123"), Some(123));
        assert_eq!(parse_byte_size("123b"), Some(123));
        assert_eq!(parse_byte_size(" 8K "), Some(8192));
        assert_eq!(parse_byte_size("16kb"), Some(16384));
        assert_eq!(parse_byte_size("3M"), Some(3 * 1024 * 1024));
        assert_eq!(parse_byte_size("1G"), Some(1 << 30));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("K"), None);
        assert_eq!(parse_byte_size("12X"), None);
        assert_eq!(parse_byte_size("-3"), None);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(InterruptReason::Deadline.to_string(), "deadline");
        assert_eq!(InterruptReason::Memory.to_string(), "memory");
        assert_eq!(InterruptReason::Cancelled.to_string(), "cancelled");
    }
}
