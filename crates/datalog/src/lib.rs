#![warn(missing_docs)]

//! # parra-datalog — a positive Datalog engine with linear and Cache
//! Datalog
//!
//! The PSPACE upper bound of *"Parameterized Verification under Release
//! Acquire is PSPACE-complete"* (PODC 2022, Section 4) rests on an
//! encoding of safety verification into the query evaluation problem for
//! **linear Datalog** (all rules have at most one body atom; combined
//! complexity PSPACE [Gottlob–Papadimitriou 2003]) via an intermediate
//! formalism, **Cache Datalog**: ordinary Datalog whose inference is
//! performed with a bounded working set (the *Cache*) from which atoms may
//! be non-deterministically dropped.
//!
//! This crate provides the full substrate:
//!
//! * [`ast`] — predicates, terms, atoms, rules, programs (with safety and
//!   arity validation) and a text [`parser`];
//! * [`eval`] — indexed semi-naive bottom-up evaluation (`Prog ⊢ g` for
//!   arbitrary positive Datalog): an interned tuple [`arena`],
//!   column-keyed join indices driven by a static join [`plan`], optional
//!   provenance, and deterministic parallel delta batches;
//! * [`naive`] — the unindexed reference evaluator the optimized engine is
//!   differentially pinned against (fuzzing, benchmarks);
//! * [`linear`] — the linear-Datalog fragment check and a worklist
//!   evaluator exploiting linearity;
//! * [`cache`] — Cache Datalog: bounded-cache provability `Prog ⊢ₖ g`
//!   (exact search) and derivation-guided cache scheduling (the
//!   constructive content of the paper's Lemma 4.6);
//! * [`translate`] — the Lemma 4.2 construction turning a Cache Datalog
//!   program with cache bound `k` into an equivalent linear Datalog
//!   program.

pub mod arena;
pub mod ast;
pub mod cache;
pub mod eval;
pub mod linear;
pub mod naive;
pub mod parser;
pub mod plan;
pub mod specialize;
pub mod translate;

pub use arena::{AtomId, TupleStore};
pub use ast::{Atom, Const, GroundAtom, PredId, Program, Rule, Term};
pub use cache::{cache_schedule, prove_with_cache, CacheSchedule};
pub use eval::{Database, Evaluator};
pub use linear::{is_linear, LinearEvaluator};
pub use naive::NaiveEvaluator;
pub use plan::PlanCache;
pub use translate::cache_to_linear;
