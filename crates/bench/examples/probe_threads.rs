//! One-shot timing probe for thread-scaling workload selection:
//! `probe_threads <workload> <engine> <threads>` runs the verifier once
//! and prints the verdict, state count, and wall-clock time.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_litmus::by_name;
use parra_qbf::gen;
use parra_qbf::reduce::reduce_to_purera;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [workload, engine, threads, rest @ ..] = args.as_slice() else {
        eprintln!("usage: probe_threads <workload> <engine> <threads> [max_env] [max_states]");
        std::process::exit(64);
    };
    let sys = match workload.as_str() {
        "copycat1" => reduce_to_purera(&gen::copycat(1)).system,
        "copycat2" => reduce_to_purera(&gen::copycat(2)).system,
        "copycat3" => reduce_to_purera(&gen::copycat(3)).system,
        "clairvoyant1" => reduce_to_purera(&gen::clairvoyant(1)).system,
        "clairvoyant2" => reduce_to_purera(&gen::clairvoyant(2)).system,
        "clairvoyant3" => reduce_to_purera(&gen::clairvoyant(3)).system,
        "clairvoyant4" => reduce_to_purera(&gen::clairvoyant(4)).system,
        name => {
            by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name}"))
                .system
        }
    };
    let engine = match engine.as_str() {
        "simplified" => EngineId::SimplifiedReach,
        "concrete" => EngineId::BoundedConcrete,
        other => panic!("unknown engine {other}"),
    };
    let threads: usize = threads.parse().unwrap();
    let mut options = VerifierOptions {
        threads,
        ..Default::default()
    };
    if let Some(max_env) = rest.first() {
        options.concrete_max_env = max_env.parse().unwrap();
    }
    if let Some(max_states) = rest.get(1) {
        options.concrete_limits.max_states = max_states.parse().unwrap();
    }
    let verifier = Verifier::new(&sys, options).unwrap();
    let t0 = Instant::now();
    let report = verifier.run(engine);
    println!(
        "{workload}/{engine}/t{threads}: {:?} states={} in {:.3}s",
        report.verdict,
        report.stats.states,
        t0.elapsed().as_secs_f64()
    );
}
