//! Cheap atomic metrics: counters, gauges (with high-water marks), and
//! power-of-two histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are obtained from a
//! [`Recorder`](crate::Recorder) and cached by the instrumented code
//! outside its hot loops. A handle from a disabled recorder holds no
//! allocation and every operation on it is a branch-on-`None` no-op, so
//! instrumentation costs nothing when observability is off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` counts values with
/// `bit_length(v) == i`, i.e. `v == 0` in bucket 0 and
/// `2^(i-1) <= v < 2^i` in bucket `i`.
pub const HIST_BUCKETS: usize = 65;

/// A monotone counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    value: AtomicU64,
    hwm: AtomicU64,
}

/// A gauge handle: a settable value with a tracked high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    /// Sets the current value, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Ordering::Relaxed);
            g.hwm.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Raises the high-water mark without changing the current value.
    #[inline]
    pub fn record_peak(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.hwm.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|g| g.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The high-water mark.
    pub fn peak(&self) -> u64 {
        self.0
            .as_ref()
            .map(|g| g.hwm.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: [0u64; HIST_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A histogram handle over `u64` samples, with power-of-two buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCell>>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            let bucket = (u64::BITS - v.leading_zeros()) as usize;
            h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        match &self.0 {
            None => HistSnapshot::default(),
            Some(h) => {
                let buckets: Vec<(u32, u64)> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect();
                HistSnapshot {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    max: h.max.load(Ordering::Relaxed),
                    buckets,
                }
            }
        }
    }
}

/// A histogram snapshot: only the non-empty buckets, as
/// `(bit_length, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// `(bit_length(v), samples)` for each non-empty bucket; bucket `b`
    /// covers `2^(b-1) <= v < 2^b` (bucket 0 covers exactly `v == 0`).
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// The mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An **upper-bound estimate** of the `q`-quantile (`0 < q <= 1`),
    /// derived from the power-of-two buckets: the reported value is the
    /// upper edge (`2^b - 1`) of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`, clamped to the observed maximum. The
    /// true quantile lies in `(2^(b-1) - 1, reported]`; with bit-length
    /// buckets the estimate is at most 2× the true value. Returns 0 with
    /// no samples.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(bucket, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                let upper = if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Upper-bound estimate of the median. See [`HistSnapshot::percentile`].
    pub fn p50(&self) -> u64 {
        self.percentile(0.5)
    }

    /// Upper-bound estimate of the 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.9)
    }

    /// Upper-bound estimate of the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// The named-metric registry behind an enabled recorder.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    pub(crate) hists: Mutex<BTreeMap<String, Arc<HistCell>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        Counter(Some(map.entry(name.to_string()).or_default().clone()))
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        Gauge(Some(map.entry(name.to_string()).or_default().clone()))
    }

    pub(crate) fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.hists.lock().unwrap();
        Histogram(Some(map.entry(name.to_string()).or_default().clone()))
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.value.load(Ordering::Relaxed),
                            peak: v.hwm.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            hists: self
                .hists
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), Histogram(Some(v.clone())).snapshot()))
                .collect(),
        }
    }
}

/// A gauge snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The last value set.
    pub value: u64,
    /// The high-water mark.
    pub peak: u64,
}

/// A point-in-time snapshot of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// See [`crate::export::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        crate::export::render_prometheus(self)
    }

    /// Counters under `prefix`, as `(suffix, delta since before)` — used to
    /// isolate one engine run's numbers out of a shared recorder.
    pub fn counter_deltas(&self, before: &MetricsSnapshot, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, &v)| {
                let delta = v - before.counters.get(k).copied().unwrap_or(0);
                (delta > 0).then(|| (k[prefix.len()..].to_string(), delta))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::default();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(5);
        assert_eq!(g.peak(), 0);
        let h = Histogram::default();
        h.record(7);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let reg = Registry::default();
        let h = reg.histogram("h");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1000 → 10.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
    }

    #[test]
    fn percentiles_are_upper_bounds_on_known_distributions() {
        let reg = Registry::default();
        let h = reg.histogram("h");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank 50 lands in bucket 6 (32..=63): upper edge 63.
        assert_eq!(s.p50(), 63);
        assert!(s.p50() >= 50, "upper bound must not undershoot");
        // Ranks 90 and 99 land in bucket 7 (64..=127), clamped to max.
        assert_eq!(s.p90(), 100);
        assert_eq!(s.p99(), 100);

        // All-zero distribution: every percentile is 0.
        let z = reg.histogram("z");
        for _ in 0..10 {
            z.record(0);
        }
        let zs = z.snapshot();
        assert_eq!((zs.p50(), zs.p99()), (0, 0));

        // Empty histogram.
        assert_eq!(HistSnapshot::default().p50(), 0);

        // Skewed: 99 fast samples, 1 slow — p99 must reach the tail's
        // bucket (1000 → bucket 10, upper edge 1023, clamped to 1000).
        let sk = reg.histogram("sk");
        for _ in 0..99 {
            sk.record(1);
        }
        sk.record(1000);
        let ss = sk.snapshot();
        assert_eq!(ss.p50(), 1);
        assert_eq!(ss.p99(), 1);
        assert_eq!(ss.percentile(1.0), 1000);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let reg = Registry::default();
        let g = reg.gauge("g");
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    fn counters_are_atomic_across_threads() {
        let reg = Registry::default();
        let c = reg.counter("c");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        // The registry hands back the same cell for the same name.
        assert_eq!(reg.counter("c").get(), 80_000);
    }
}
