#![warn(missing_docs)]

//! # parra-limits — resource governance for worst-case-expensive engines
//!
//! Every verdict fragment this workspace decides is worst-case expensive:
//! the §4.3 cost bound is doubly exponential, the Lemma 4.2 cache→linear
//! cross-check is exponential, and the closely related full fragment is
//! non-primitive-recursive-hard. A server (or a CI job, or a fuzz loop)
//! cannot afford "run to completion or die"; it needs runs that are
//! *interruptible*, *bounded*, and *isolated*.
//!
//! This crate is the shared governance layer (std-only, like the rest of
//! the workspace):
//!
//! | need | API |
//! |---|---|
//! | "stop after 5 seconds" | [`ResourceBudget::with_deadline`] |
//! | "stop after 1 GiB" | [`ResourceBudget::with_memory_limit`] + [`TrackingAlloc`] |
//! | "stop when I say so" | [`CancelToken`] |
//! | what stopped us | [`InterruptReason`] |
//! | "turn away the 9th request" | [`AdmissionGate`] |
//!
//! Engines hold a [`ResourceBudget`] and call [`ResourceBudget::check`]
//! at **round granularity** — once per search wave, BFS round, or
//! semi-naive delta round, never per state or per tuple. A check has no
//! side effects, so a run that *completes* under a budget is
//! byte-identical to an unlimited run (the determinism guarantee of
//! `parra-search` is preserved); a run that exhausts its budget stops at
//! the next round boundary and reports the [`InterruptReason`] alongside
//! whatever partial statistics it accumulated.
//!
//! Memory accounting generalizes the counting-allocator regression test
//! that pinned the Datalog arena (`datalog/tests/arena_alloc.rs`): the
//! *binary* installs [`TrackingAlloc`] as its `#[global_allocator]`, and
//! [`heap_in_use`] then reports live process-heap bytes that
//! [`ResourceBudget::check`] compares against the limit. Library users
//! that do not install the allocator get `None` from [`heap_in_use`] and
//! memory limits are (soundly) not enforced — a budget can only make an
//! engine stop *earlier*, never change a completed verdict.

pub mod admission;
pub mod alloc;
pub mod budget;

pub use admission::{AdmissionGate, AdmissionPermit, RejectReason};
pub use alloc::{heap_in_use, heap_peak, TrackingAlloc};
pub use budget::{parse_byte_size, CancelToken, Headroom, InterruptReason, ResourceBudget};
