//! F6: scaling of the TQBF reduction with the alternation depth — the
//! PSPACE-hardness family (copycat is true, clairvoyant is false).

use parra_bench::micro::Harness;
use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_qbf::gen;
use parra_qbf::reduce::reduce_to_purera;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("qbf_reduction");
    group.sample_size(10);
    for n in 0..=2usize {
        let reduction = reduce_to_purera(&gen::copycat(n));
        let verifier = Verifier::new(&reduction.system, VerifierOptions::default()).unwrap();
        group.bench_function(&format!("copycat/{n}"), |b| {
            b.iter(|| {
                let r = verifier.run(EngineId::SimplifiedReach);
                std::hint::black_box(r.verdict)
            })
        });
    }
    for n in 1..=2usize {
        let reduction = reduce_to_purera(&gen::clairvoyant(n));
        let verifier = Verifier::new(&reduction.system, VerifierOptions::default()).unwrap();
        group.bench_function(&format!("clairvoyant/{n}"), |b| {
            b.iter(|| {
                let r = verifier.run(EngineId::SimplifiedReach);
                std::hint::black_box(r.verdict)
            })
        });
    }
    group.finish();
}
