//! Pretty-printing of expressions, statements, and systems with resolved
//! names.
//!
//! Identifiers are dense indices; rendering them readably needs the name
//! tables, so the printers take a [`Names`] context rather than using
//! `Display` impls.

use crate::cfg::Instr;
use crate::expr::{Binop, Expr, Unop};
use crate::ident::SymbolTable;
use crate::stmt::Com;
use crate::system::{ParamSystem, Program};
use std::fmt::Write as _;

/// Name-resolution context for printing: shared variables and (one
/// program's) registers.
#[derive(Debug, Clone, Copy)]
pub struct Names<'a> {
    /// Shared-variable names.
    pub vars: &'a SymbolTable,
    /// Register names of the program being printed.
    pub regs: &'a SymbolTable,
}

impl<'a> Names<'a> {
    /// Context for `program` inside a system with variable table `vars`.
    pub fn for_program(vars: &'a SymbolTable, program: &'a Program) -> Names<'a> {
        Names {
            vars,
            regs: program.regs(),
        }
    }

    fn var(&self, i: u32) -> String {
        self.vars
            .get(i)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("x{i}"))
    }

    fn reg(&self, i: u32) -> String {
        self.regs
            .get(i)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("r{i}"))
    }
}

/// Renders an expression.
pub fn expr_to_string(e: &Expr, names: Names<'_>) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, names, 0);
    s
}

fn binop_prec(op: Binop) -> u8 {
    match op {
        Binop::Or => 1,
        Binop::And => 2,
        Binop::Eq | Binop::Ne | Binop::Lt | Binop::Le | Binop::Gt | Binop::Ge => 3,
        Binop::Add | Binop::Sub => 4,
        Binop::Mul => 5,
    }
}

fn write_expr(out: &mut String, e: &Expr, names: Names<'_>, min_prec: u8) {
    match e {
        Expr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Reg(r) => out.push_str(&names.reg(r.0)),
        Expr::Unop(Unop::Not, inner) => {
            out.push('!');
            write_expr(out, inner, names, 6);
        }
        Expr::Binop(op, a, b) => {
            let p = binop_prec(*op);
            let parens = p < min_prec;
            if parens {
                out.push('(');
            }
            write_expr(out, a, names, p);
            let _ = write!(out, " {op} ");
            write_expr(out, b, names, p + 1);
            if parens {
                out.push(')');
            }
        }
    }
}

/// Renders a single CFA instruction.
pub fn instr_to_string(i: &Instr, names: Names<'_>) -> String {
    match i {
        Instr::Skip => "skip".to_owned(),
        Instr::Assume(e) => format!("assume {}", expr_to_string(e, names)),
        Instr::AssertFalse => "assert false".to_owned(),
        Instr::Assign(r, e) => format!("{} := {}", names.reg(r.0), expr_to_string(e, names)),
        Instr::Load(r, x) => format!("{} <- {}", names.reg(r.0), names.var(x.0)),
        Instr::Store(x, e) => format!("{} := {}", names.var(x.0), expr_to_string(e, names)),
        Instr::Cas(x, e1, e2) => format!(
            "cas({}, {}, {})",
            names.var(x.0),
            expr_to_string(e1, names),
            expr_to_string(e2, names)
        ),
    }
}

/// Renders a statement as indented block text (the parser's input syntax).
pub fn com_to_string(c: &Com, names: Names<'_>) -> String {
    let mut s = String::new();
    write_com(&mut s, c, names, 0);
    s
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn write_com(out: &mut String, c: &Com, names: Names<'_>, depth: usize) {
    match c {
        Com::Seq(a, b) => {
            write_com(out, a, names, depth);
            write_com(out, b, names, depth);
        }
        Com::Skip => {
            indent(out, depth);
            out.push_str("skip;\n");
        }
        Com::Assume(e) => {
            indent(out, depth);
            let _ = writeln!(out, "assume {};", expr_to_string(e, names));
        }
        Com::AssertFalse => {
            indent(out, depth);
            out.push_str("assert false;\n");
        }
        Com::Assign(r, e) => {
            indent(out, depth);
            let _ = writeln!(out, "{} := {};", names.reg(r.0), expr_to_string(e, names));
        }
        Com::Load(r, x) => {
            indent(out, depth);
            let _ = writeln!(out, "{} <- {};", names.reg(r.0), names.var(x.0));
        }
        Com::Store(x, e) => {
            indent(out, depth);
            let _ = writeln!(out, "{} := {};", names.var(x.0), expr_to_string(e, names));
        }
        Com::Cas(x, e1, e2) => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "cas({}, {}, {});",
                names.var(x.0),
                expr_to_string(e1, names),
                expr_to_string(e2, names)
            );
        }
        Com::Choice(a, b) => {
            indent(out, depth);
            out.push_str("choice {\n");
            write_com(out, a, names, depth + 1);
            indent(out, depth);
            out.push_str("} or {\n");
            write_com(out, b, names, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Com::Star(inner) => {
            indent(out, depth);
            out.push_str("loop {\n");
            write_com(out, inner, names, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Renders a whole program declaration.
pub fn program_to_string(kind: &str, p: &Program, vars: &SymbolTable) -> String {
    let names = Names::for_program(vars, p);
    let mut s = String::new();
    let _ = writeln!(s, "{} {} {{", kind, p.name());
    if !p.regs().is_empty() {
        let regs: Vec<&str> = p.regs().iter().map(|(_, n)| n).collect();
        let _ = writeln!(s, "    regs {};", regs.join(", "));
    }
    let body = com_to_string(p.com(), names);
    for line in body.lines() {
        let _ = writeln!(s, "    {line}");
    }
    s.push_str("}\n");
    s
}

/// Renders a whole system in the parser's input syntax.
pub fn system_to_string(sys: &ParamSystem) -> String {
    let mut s = String::new();
    s.push_str("system {\n");
    let _ = writeln!(s, "    dom {};", sys.dom.size());
    if !sys.vars.is_empty() {
        let vars: Vec<&str> = sys.vars.iter().map(|(_, n)| n).collect();
        let _ = writeln!(s, "    vars {};", vars.join(", "));
    }
    for block in std::iter::once(("env", &sys.env)).chain(sys.dis.iter().map(|p| ("dis", p))) {
        let text = program_to_string(block.0, block.1, &sys.vars);
        for line in text.lines() {
            let _ = writeln!(s, "    {line}");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{RegId, VarId};

    fn names_with(vars: &[&str], regs: &[&str]) -> (SymbolTable, SymbolTable) {
        (
            vars.iter().map(|s| s.to_string()).collect(),
            regs.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn expr_precedence_printed_minimally() {
        let (vars, regs) = names_with(&[], &["a", "b"]);
        let names = Names {
            vars: &vars,
            regs: &regs,
        };
        let a = Expr::reg(RegId(0));
        let b = Expr::reg(RegId(1));
        // (a + b) * 2: parens required
        let e = Expr::binop(
            Binop::Mul,
            Expr::binop(Binop::Add, a.clone(), b.clone()),
            Expr::val(2),
        );
        assert_eq!(expr_to_string(&e, names), "(a + b) * 2");
        // a + b * 2: no parens
        let e2 = Expr::binop(Binop::Add, a, Expr::binop(Binop::Mul, b, Expr::val(2)));
        assert_eq!(expr_to_string(&e2, names), "a + b * 2");
    }

    #[test]
    fn not_binds_tight() {
        let (vars, regs) = names_with(&[], &["a"]);
        let names = Names {
            vars: &vars,
            regs: &regs,
        };
        let e = Expr::reg(RegId(0)).eq(Expr::val(0)).not();
        assert_eq!(expr_to_string(&e, names), "!(a == 0)");
    }

    #[test]
    fn com_blocks_render() {
        let (vars, regs) = names_with(&["x"], &["r"]);
        let names = Names {
            vars: &vars,
            regs: &regs,
        };
        let c = Com::choice([
            Com::Load(RegId(0), VarId(0)),
            Com::star(Com::Store(VarId(0), Expr::val(1))),
        ]);
        let text = com_to_string(&c, names);
        assert!(text.contains("choice {"));
        assert!(text.contains("} or {"));
        assert!(text.contains("loop {"));
        assert!(text.contains("r <- x;"));
        assert!(text.contains("x := 1;"));
    }

    #[test]
    fn instr_rendering() {
        let (vars, regs) = names_with(&["flag"], &["r"]);
        let names = Names {
            vars: &vars,
            regs: &regs,
        };
        assert_eq!(
            instr_to_string(&Instr::Cas(VarId(0), Expr::val(0), Expr::val(1)), names),
            "cas(flag, 0, 1)"
        );
        assert_eq!(instr_to_string(&Instr::Skip, names), "skip");
    }
}
