//! Ergonomic Rust builders for programs and systems.
//!
//! The [`parser`](crate::parser) is the nicest way to write fixed programs;
//! the builders in this module are for *generated* programs (the litmus
//! suite, the TQBF reduction, random program generation in tests).
//!
//! # Example
//!
//! ```
//! use parra_program::builder::SystemBuilder;
//! use parra_program::expr::Expr;
//!
//! let mut b = SystemBuilder::new(2);
//! let x = b.var("x");
//! let y = b.var("y");
//!
//! let mut producer = b.program("producer");
//! let r = producer.reg("r");
//! producer.load(r, y);
//! producer.assume(Expr::reg(r).eq(Expr::val(1)));
//! producer.store(x, 1);
//! let producer = producer.finish();
//!
//! let mut consumer = b.program("consumer");
//! let s = consumer.reg("s");
//! consumer.store(y, 1);
//! consumer.load(s, x);
//! consumer.assume(Expr::reg(s).eq(Expr::val(1)));
//! consumer.assert_false();
//! let consumer = consumer.finish();
//!
//! let sys = b.build(producer, vec![consumer]);
//! assert_eq!(sys.dis.len(), 1);
//! ```

use crate::expr::Expr;
use crate::ident::{RegId, SymbolTable, VarId};
use crate::stmt::Com;
use crate::system::{ParamSystem, Program};
use crate::value::{Dom, Val};

/// Builder for a [`ParamSystem`]: owns the data domain and the shared
/// variable namespace.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dom: Dom,
    vars: SymbolTable,
}

impl SystemBuilder {
    /// Starts a system over `Dom = {0..dom_size-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `dom_size == 0`.
    pub fn new(dom_size: u32) -> SystemBuilder {
        SystemBuilder {
            dom: Dom::new(dom_size),
            vars: SymbolTable::new(),
        }
    }

    /// Declares (or re-uses) a shared variable.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId(self.vars.intern(name))
    }

    /// The data domain.
    pub fn dom(&self) -> Dom {
        self.dom
    }

    /// Starts a program with its own register namespace.
    pub fn program(&self, name: &str) -> ProgramBuilder {
        ProgramBuilder::new(name)
    }

    /// Assembles the system.
    ///
    /// # Panics
    ///
    /// Panics if a program accesses an undeclared shared variable.
    pub fn build(self, env: Program, dis: Vec<Program>) -> ParamSystem {
        ParamSystem::new(self.dom, self.vars, env, dis)
    }
}

/// Builder for one [`Program`]: accumulates statements sequentially, with
/// structured nesting for choices and loops.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    regs: SymbolTable,
    stmts: Vec<Com>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_owned(),
            regs: SymbolTable::new(),
            stmts: Vec::new(),
        }
    }

    /// Declares (or re-uses) a register.
    pub fn reg(&mut self, name: &str) -> RegId {
        RegId(self.regs.intern(name))
    }

    /// Appends a raw statement.
    pub fn push(&mut self, c: Com) -> &mut Self {
        self.stmts.push(c);
        self
    }

    /// `skip`.
    pub fn skip(&mut self) -> &mut Self {
        self.push(Com::Skip)
    }

    /// `r := x` — load.
    pub fn load(&mut self, r: RegId, x: VarId) -> &mut Self {
        self.push(Com::Load(r, x))
    }

    /// `x := e` — store.
    pub fn store(&mut self, x: VarId, e: impl Into<Expr>) -> &mut Self {
        self.push(Com::Store(x, e.into()))
    }

    /// `r := e` — register assignment.
    pub fn assign(&mut self, r: RegId, e: impl Into<Expr>) -> &mut Self {
        self.push(Com::Assign(r, e.into()))
    }

    /// `assume e`.
    pub fn assume(&mut self, e: impl Into<Expr>) -> &mut Self {
        self.push(Com::Assume(e.into()))
    }

    /// `assume r == v` — the ubiquitous flag check.
    pub fn assume_eq(&mut self, r: RegId, v: u32) -> &mut Self {
        self.assume(Expr::reg(r).eq(Expr::val(v)))
    }

    /// `assert false`.
    pub fn assert_false(&mut self) -> &mut Self {
        self.push(Com::AssertFalse)
    }

    /// `cas(x, e₁, e₂)`.
    pub fn cas(&mut self, x: VarId, e1: impl Into<Expr>, e2: impl Into<Expr>) -> &mut Self {
        self.push(Com::Cas(x, e1.into(), e2.into()))
    }

    /// Wait loop remodelled as `load; assume` (see
    /// [`Com::await_value`]); allocates a scratch register.
    pub fn await_eq(&mut self, x: VarId, v: u32) -> &mut Self {
        let scratch = self.reg(&format!("$await_{}", x.0));
        self.push(Com::await_value(x, scratch, Expr::val(v)))
    }

    /// Runs `f` to build a nested block and returns it as a single
    /// statement, without appending it.
    pub fn block(&mut self, f: impl FnOnce(&mut Self)) -> Com {
        let saved = std::mem::take(&mut self.stmts);
        f(self);
        let inner = std::mem::replace(&mut self.stmts, saved);
        Com::seq(inner)
    }

    /// `if cond { then }`.
    pub fn if_then(&mut self, cond: Expr, then: impl FnOnce(&mut Self)) -> &mut Self {
        let t = self.block(then);
        self.push(Com::if_then(cond, t))
    }

    /// `if cond { then } else { els }`.
    pub fn if_then_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let t = self.block(then);
        let e = self.block(els);
        self.push(Com::if_then_else(cond, t, e))
    }

    /// `while cond { body }`.
    pub fn while_loop(&mut self, cond: Expr, body: impl FnOnce(&mut Self)) -> &mut Self {
        let b = self.block(body);
        self.push(Com::while_loop(cond, b))
    }

    /// `body*` — unbounded iteration.
    pub fn star(&mut self, body: impl FnOnce(&mut Self)) -> &mut Self {
        let b = self.block(body);
        self.push(Com::star(b))
    }

    /// Non-deterministic choice between two blocks.
    pub fn choice(
        &mut self,
        left: impl FnOnce(&mut Self),
        right: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let l = self.block(left);
        let r = self.block(right);
        self.push(Com::choice([l, r]))
    }

    /// Non-deterministic choice among prebuilt alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `alts` is empty.
    pub fn choice_of(&mut self, alts: Vec<Com>) -> &mut Self {
        self.push(Com::choice(alts))
    }

    /// Finishes the program, compiling its CFA.
    pub fn finish(self) -> Program {
        Program::new(self.name, self.regs, Com::seq(self.stmts))
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Self {
        Expr::Const(Val(v))
    }
}

impl From<i32> for Expr {
    /// Convenience for integer literals in builder calls.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative; domain values are non-negative.
    fn from(v: i32) -> Self {
        assert!(v >= 0, "domain values are non-negative, got {v}");
        Expr::Const(Val(v as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::SystemClass;

    #[test]
    fn builds_producer_consumer() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("p");
        let r = env.reg("r");
        env.load(r, x).assume_eq(r, 1).store(x, 0);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        assert_eq!(sys.n_vars(), 1);
        assert!(SystemClass::of(&sys).is_decidable_fragment());
    }

    #[test]
    fn var_and_reg_are_idempotent() {
        let mut b = SystemBuilder::new(2);
        assert_eq!(b.var("x"), b.var("x"));
        let mut p = b.program("p");
        assert_eq!(p.reg("r"), p.reg("r"));
    }

    #[test]
    fn structured_statements_nest() {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let mut p = b.program("p");
        let r = p.reg("r");
        p.while_loop(Expr::reg(r).ne(Expr::val(2)), |p| {
            p.load(r, x);
            p.if_then_else(
                Expr::reg(r).eq(Expr::val(1)),
                |p| {
                    p.store(x, 2);
                },
                |p| {
                    p.skip();
                },
            );
        });
        let prog = p.finish();
        assert!(!prog.cfa().is_acyclic()); // while compiles to a cycle
        assert!(prog.cfa().is_cas_free());
    }

    #[test]
    fn await_allocates_scratch() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut p = b.program("p");
        p.await_eq(x, 1);
        let prog = p.finish();
        assert_eq!(prog.n_regs(), 1);
        assert!(prog.cfa().is_acyclic()); // remodelled, not a loop
    }

    #[test]
    fn star_builds_cycle() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut p = b.program("p");
        p.star(|p| {
            p.store(x, 1);
        });
        assert!(!p.finish().cfa().is_acyclic());
    }

    #[test]
    fn choice_forks() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut p = b.program("p");
        p.choice(
            |p| {
                p.store(x, 0);
            },
            |p| {
                p.store(x, 1);
            },
        );
        let prog = p.finish();
        assert!(prog.cfa().is_acyclic());
    }
}
