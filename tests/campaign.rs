//! End-to-end tests of `parra campaign`: crash-injection resume,
//! warm-cache re-runs, shard partitioning + merge, the golden diff
//! fixture, and the `batch --strict` degradation gate.

use parra::campaign::Store;
use parra::obs::json::{self, Value};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn examples_dir() -> String {
    format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    format!(
        "{}/tests/fixtures/campaign/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("parra-campaign-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the litmus suite as a `.ra` corpus and returns the directory.
fn litmus_corpus(dir: &Path) -> PathBuf {
    let corpus = dir.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    for bench in parra::litmus::all() {
        std::fs::write(
            corpus.join(format!("{}.ra", bench.name)),
            parra::program::pretty::system_to_string(&bench.system),
        )
        .unwrap();
    }
    corpus
}

fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

/// Parses the final summary line of a campaign run's stdout.
fn summary_of(out: &Output) -> Value {
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .expect("campaign printed a summary line");
    json::parse(last).expect("summary line is JSON")
}

fn summary_field(out: &Output, field: &str) -> u64 {
    summary_of(out)
        .get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("summary has numeric `{field}`"))
}

/// A campaign killed mid-sweep and resumed converges on a store whose
/// deterministic content is byte-identical to an uninterrupted run's —
/// at 1 and at 4 worker threads.
#[test]
fn crash_injection_resume_matches_uninterrupted() {
    let dir = scratch("crash-resume");
    let corpus = litmus_corpus(&dir);
    let corpus_arg = corpus.display().to_string();
    for threads in ["1", "4"] {
        let full = dir.join(format!("full-t{threads}"));
        let killed = dir.join(format!("killed-t{threads}"));
        let (full_arg, killed_arg) = (full.display().to_string(), killed.display().to_string());

        let out = run(
            &[
                "campaign",
                "run",
                &corpus_arg,
                "--store",
                &full_arg,
                "--engine",
                "simplified",
                "--threads",
                threads,
            ],
            &[],
        );
        // The litmus suite mixes SAFE and UNSAFE benchmarks, so a healthy
        // sweep reports a verdict code (0/1/2), never a usage error.
        assert!(
            matches!(out.status.code(), Some(0..=2)),
            "uninterrupted sweep failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = run(
            &[
                "campaign",
                "run",
                &corpus_arg,
                "--store",
                &killed_arg,
                "--engine",
                "simplified",
                "--threads",
                threads,
            ],
            &[("PARRA_CAMPAIGN_KILL_AFTER", "2")],
        );
        assert_eq!(
            out.status.code(),
            Some(86),
            "kill hook should exit 86; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let (partial, _) = Store::open(&killed).unwrap();
        assert_eq!(
            partial.records().unwrap().len(),
            2,
            "the kill fired after exactly two checkpointed records"
        );

        let out = run(
            &[
                "campaign",
                "resume",
                "--store",
                &killed_arg,
                "--threads",
                threads,
            ],
            &[],
        );
        assert!(
            matches!(out.status.code(), Some(0..=2)),
            "resume failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            summary_field(&out, "cached"),
            2,
            "resume keeps the two checkpointed verdicts"
        );

        let (full_store, _) = Store::open(&full).unwrap();
        let (resumed_store, _) = Store::open(&killed).unwrap();
        assert_eq!(
            full_store.canonical_results().unwrap(),
            resumed_store.canonical_results().unwrap(),
            "threads={threads}: resumed store diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm re-run over an unchanged corpus verifies nothing, and the
/// store diffs clean (exit 0) against its pre-re-run copy.
#[test]
fn warm_rerun_verifies_nothing_and_diffs_clean() {
    let dir = scratch("warm");
    let store = dir.join("store");
    let store_arg = store.display().to_string();
    let cold = run(
        &[
            "campaign",
            "run",
            &examples_dir(),
            "--store",
            &store_arg,
            "--engine",
            "simplified",
        ],
        &[],
    );
    // The examples mix SAFE and UNSAFE files: exit 1.
    assert_eq!(cold.status.code(), Some(1));
    assert_eq!(summary_field(&cold, "cached"), 0);

    // Snapshot the store, then re-run warm.
    let snap = dir.join("snapshot");
    std::fs::create_dir_all(&snap).unwrap();
    for f in ["manifest.json", "results.jsonl"] {
        std::fs::copy(store.join(f), snap.join(f)).unwrap();
    }
    let warm = run(
        &[
            "campaign",
            "run",
            &examples_dir(),
            "--store",
            &store_arg,
            "--engine",
            "simplified",
        ],
        &[],
    );
    assert_eq!(warm.status.code(), Some(1));
    assert_eq!(
        summary_field(&warm, "verified"),
        0,
        "warm re-run re-verified inputs"
    );
    assert_eq!(
        summary_field(&warm, "cached"),
        summary_field(&warm, "planned"),
        "warm re-run should skip every input"
    );

    let diff = run(
        &["campaign", "diff", &snap.display().to_string(), &store_arg],
        &[],
    );
    assert_eq!(
        diff.status.code(),
        Some(0),
        "warm re-run store should diff clean: {}",
        String::from_utf8_lossy(&diff.stdout)
    );
    assert!(String::from_utf8_lossy(&diff.stdout).contains("clean: no flips, no regressions"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// For several N, the `--shard k/N` assignments partition the key set —
/// disjoint, jointly exhaustive — and the merged shard stores diff
/// clean against a single-process run.
#[test]
fn shards_partition_and_merge_cleanly() {
    let dir = scratch("shards");
    let full = dir.join("full");
    let full_arg = full.display().to_string();
    let out = run(
        &[
            "campaign",
            "run",
            &examples_dir(),
            "--store",
            &full_arg,
            "--engine",
            "simplified",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(1));
    let (full_store, _) = Store::open(&full).unwrap();
    let full_keys: std::collections::BTreeSet<String> =
        full_store.merged().unwrap().keys().cloned().collect();
    assert_eq!(full_keys.len(), 5);

    for n in [2usize, 3] {
        let mut shard_args: Vec<String> = Vec::new();
        let mut union: std::collections::BTreeSet<String> = Default::default();
        let mut total = 0usize;
        for k in 1..=n {
            let store = dir.join(format!("shard-{k}-of-{n}"));
            let store_arg = store.display().to_string();
            let out = run(
                &[
                    "campaign",
                    "run",
                    &examples_dir(),
                    "--store",
                    &store_arg,
                    "--engine",
                    "simplified",
                    "--shard",
                    &format!("{k}/{n}"),
                ],
                &[],
            );
            assert!(
                out.status.code() == Some(0)
                    || out.status.code() == Some(1)
                    || out.status.code() == Some(2),
                "shard {k}/{n} errored: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let (store, _) = Store::open(&store).unwrap();
            let keys: Vec<String> = store.merged().unwrap().keys().cloned().collect();
            total += keys.len();
            union.extend(keys);
            shard_args.push(store_arg);
        }
        assert_eq!(union, full_keys, "N={n}: shard union misses keys");
        assert_eq!(total, full_keys.len(), "N={n}: shards overlap");

        let merged = dir.join(format!("merged-{n}"));
        let merged_arg = merged.display().to_string();
        let mut args: Vec<&str> = vec!["campaign", "status"];
        args.extend(shard_args.iter().map(String::as_str));
        args.extend(["--merge-out", &merged_arg]);
        let out = run(&args, &[]);
        assert!(
            out.status.success(),
            "status --merge-out failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let diff = run(&["campaign", "diff", &full_arg, &merged_arg], &[]);
        assert_eq!(
            diff.status.code(),
            Some(0),
            "N={n}: merged shards diff dirty vs single-process run: {}",
            String::from_utf8_lossy(&diff.stdout)
        );
        let (merged_store, _) = Store::open(&merged).unwrap();
        assert_eq!(
            merged_store.canonical_results().unwrap(),
            full_store.canonical_results().unwrap(),
            "N={n}: merged store content diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed golden fixture: a verdict flip, a duration regression,
/// one removed and one added input — exact report text, exit 1.
#[test]
fn golden_diff_fixture_renders_exactly() {
    let (base, new) = (fixture("base"), fixture("new"));
    let out = run(&["campaign", "diff", &base, &new], &[]);
    assert_eq!(out.status.code(), Some(1), "a verdict flip must exit 1");
    let expected = format!(
        "campaign diff: baseline `{base}` vs new `{new}`\n\
         diff: 2 runs compared, 1 verdict flips, 1 phase regressions\n\
         \x20 FLIP a.ra · all-engines: SAFE -> UNSAFE\n\
         \x20 SLOWER b.ra · all-engines [total]: 120.0ms -> 300.0ms (+150%)\n\
         \x20 only in baseline: c.ra · all-engines\n\
         \x20 only in new set: d.ra · all-engines\n"
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
}

/// `parra report` ingests a campaign store's `results.jsonl` directly.
#[test]
fn report_ingests_store_records() {
    let out = run(
        &["report", &format!("{}/results.jsonl", fixture("base"))],
        &[],
    );
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all-engines"), "dashboard: {stdout}");
}

/// The `batch --strict` fix: a file that *decides* while losing an
/// engine run to a deadline exits 0 without `--strict` (the historical
/// bug shape) and 2 with it; without the injected deadline `--strict`
/// stays 0.
#[test]
fn batch_strict_flags_degraded_portfolios() {
    let spinlock = format!("{}/spinlock.ra", examples_dir());
    let hook = [("PARRA_INJECT_DEADLINE", "spinlock")];

    let out = run(&["batch", &spinlock, "--all-engines"], &hook);
    assert_eq!(
        out.status.code(),
        Some(0),
        "non-strict batch hides the degradation (decided file => exit 0)"
    );
    let line = String::from_utf8_lossy(&out.stdout);
    assert!(line.contains("\"verdict\":\"SAFE\""), "line: {line}");
    assert!(
        line.contains("\"interrupted\":null"),
        "decided lines keep interrupted null: {line}"
    );

    let out = run(&["batch", &spinlock, "--all-engines", "--strict"], &hook);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--strict surfaces the deadline-degraded engine run"
    );

    let out = run(&["batch", &spinlock, "--all-engines", "--strict"], &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--strict passes when no engine was interrupted: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
